// Time-expanded graph (Sec. V).
//
// For a horizon of H transitions starting at slot t, the graph holds one
// virtual copy i^n of every datacenter per layer n in [t, t+H]. Between
// consecutive layers it holds:
//   * one arc i^n -> j^{n+1} per topology link {i,j}, carrying the link's
//     residual capacity at slot n and its unit cost a_ij, and
//   * one storage arc i^n -> i^{n+1} per datacenter, with infinite (or
//     optionally capped) capacity and zero cost — the "holdover" M_ii(n).
//
// The per-slot residual capacity is supplied by a callback so the online
// controller can subtract volumes already committed by earlier plans
// (the "available link capacity at time t" of Sec. III).
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "net/topology.h"

namespace postcard::net {

/// Residual capacity (GB) of topology link `link_index` during slot `slot`.
using ResidualCapacityFn = std::function<double(int link_index, int slot)>;

struct TimeArc {
  int from_node = 0;       // datacenter index at layer `layer`
  int to_node = 0;         // datacenter index at layer `layer + 1`
  int layer = 0;           // offset from start slot: 0 .. horizon-1
  int link_index = -1;     // topology link, or -1 for a storage arc
  double capacity = 0.0;   // GB transferable during this slot
  double unit_cost = 0.0;  // 0 for storage arcs
  bool storage() const { return link_index < 0; }
};

class TimeExpandedGraph {
 public:
  /// Builds the expansion over `horizon` layer transitions starting at
  /// absolute slot `start_slot`. `residual` may be null, in which case each
  /// arc carries the full topology capacity. `storage_capacity` bounds the
  /// holdover volume per datacenter per slot (infinite per the paper).
  TimeExpandedGraph(const Topology& topology, int start_slot, int horizon,
                    const ResidualCapacityFn& residual = nullptr,
                    double storage_capacity =
                        std::numeric_limits<double>::infinity(),
                    bool enable_storage = true);

  int num_datacenters() const { return n_; }
  int start_slot() const { return start_slot_; }
  int horizon() const { return horizon_; }
  int num_layers() const { return horizon_ + 1; }

  const std::vector<TimeArc>& arcs() const { return arcs_; }
  int num_arcs() const { return static_cast<int>(arcs_.size()); }

  /// Arcs departing layer `layer` (0-based offset); contiguous range.
  std::pair<int, int> layer_arc_range(int layer) const {
    return {layer_begin_[layer], layer_begin_[layer + 1]};
  }

  /// Node id of datacenter `dc` at layer offset `layer` (for flow algorithms
  /// that want a flat node numbering).
  int node_id(int dc, int layer) const { return layer * n_ + dc; }
  int num_nodes() const { return n_ * num_layers(); }

 private:
  int n_;
  int start_slot_;
  int horizon_;
  std::vector<TimeArc> arcs_;
  std::vector<int> layer_begin_;
};

}  // namespace postcard::net
