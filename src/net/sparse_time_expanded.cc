#include "net/sparse_time_expanded.h"

#include <algorithm>
#include <stdexcept>

namespace postcard::net {

std::vector<int> all_pairs_hops(const Topology& topology) {
  const int n = topology.num_datacenters();
  std::vector<int> hops(static_cast<std::size_t>(n) * n, kUnreachableHops);
  std::vector<int> frontier;
  frontier.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    int* row = hops.data() + static_cast<std::size_t>(s) * n;
    row[s] = 0;
    frontier.assign(1, s);
    int depth = 0;
    while (!frontier.empty()) {
      ++depth;
      std::vector<int> next;
      for (const int u : frontier) {
        for (const int link : topology.out_links(u)) {
          const int v = topology.link(link).to;
          if (row[v] != kUnreachableHops) continue;
          row[v] = depth;
          next.push_back(v);
        }
      }
      frontier = std::move(next);
    }
  }
  return hops;
}

bool SparseTimeGraph::structure_matches(const Topology& topology,
                                        bool enable_storage) const {
  return start_slot_ >= 0 && n_ == topology.num_datacenters() &&
         num_links_ == topology.num_links() &&
         enable_storage_ == enable_storage;
}

void SparseTimeGraph::append_layer(const Topology& topology, int layer) {
  for (int l = 0; l < num_links_; ++l) {
    const Link& link = topology.link(l);
    arcs_.push_back({link.from, link.to, layer, l, 0.0, link.unit_cost});
  }
  if (enable_storage_) {
    for (int i = 0; i < n_; ++i) {
      arcs_.push_back({i, i, layer, -1, 0.0, 0.0});
    }
  }
  ++layers_built_;
}

void SparseTimeGraph::advance_to(const Topology& topology, int start_slot,
                                 int horizon,
                                 const ResidualCapacityFn& residual,
                                 double storage_capacity,
                                 bool enable_storage) {
  if (horizon < 1) throw std::invalid_argument("horizon must be >= 1");
  if (start_slot < 0) throw std::invalid_argument("start slot must be >= 0");

  const bool reusable = structure_matches(topology, enable_storage) &&
                        start_slot >= start_slot_ &&
                        start_slot <= start_slot_ + horizon_;
  if (!reusable) {
    n_ = topology.num_datacenters();
    if (num_links_ != topology.num_links() || hops_.empty()) {
      hops_ = all_pairs_hops(topology);
    }
    num_links_ = topology.num_links();
    block_ = num_links_ + (enable_storage ? n_ : 0);
    enable_storage_ = enable_storage;
    arcs_.clear();
    arcs_.reserve(static_cast<std::size_t>(horizon) * block_);
    for (int layer = 0; layer < horizon; ++layer) append_layer(topology, layer);
  } else {
    // Retire the layers that fell out of the window: shift the survivors
    // down one block per expired layer and relabel their layer fields.
    const int shift = start_slot - start_slot_;
    if (shift > 0) {
      const std::size_t keep = arcs_.size() -
                               static_cast<std::size_t>(shift) * block_;
      std::move(arcs_.begin() + static_cast<std::ptrdiff_t>(shift) * block_,
                arcs_.end(), arcs_.begin());
      arcs_.resize(keep);
      for (TimeArc& arc : arcs_) arc.layer -= shift;
    }
    layers_reused_ += static_cast<long>(arcs_.size()) / std::max(1, block_);
    // Trim or extend the frontier to the requested horizon.
    const int have = static_cast<int>(arcs_.size()) / std::max(1, block_);
    if (have > horizon) {
      arcs_.resize(static_cast<std::size_t>(horizon) * block_);
    } else {
      arcs_.reserve(static_cast<std::size_t>(horizon) * block_);
      for (int layer = have; layer < horizon; ++layer) {
        append_layer(topology, layer);
      }
    }
  }
  start_slot_ = start_slot;
  horizon_ = horizon;

  // Residuals move with every commit, so all capacities refresh in place.
  // Unit costs refresh too: set_link may reprice an existing link.
  for (int layer = 0; layer < horizon; ++layer) {
    TimeArc* block = arcs_.data() + static_cast<std::size_t>(layer) * block_;
    const int slot = start_slot + layer;
    for (int l = 0; l < num_links_; ++l) {
      const Link& link = topology.link(l);
      block[l].capacity =
          residual ? std::max(0.0, residual(l, slot)) : link.capacity;
      block[l].unit_cost = link.unit_cost;
    }
    if (enable_storage_) {
      for (int i = 0; i < n_; ++i) {
        block[num_links_ + i].capacity = storage_capacity;
      }
    }
  }
}

}  // namespace postcard::net
