// Inter-datacenter transfer requests.
//
// A "file" in the paper's generic sense: a block of delay-tolerant data
// (backup, bulk update, MapReduce intermediate output, ...) described by the
// four-tuple (s_k, d_k, F_k, T_k) of Sec. III, extended with the slot at
// which it enters the system and a stable id for plan bookkeeping.
#pragma once

#include <stdexcept>
#include <vector>

#include "net/topology.h"

namespace postcard::net {

struct FileRequest {
  int id = 0;
  int source = 0;
  int destination = 0;
  double size = 0.0;        // F_k, GB
  int max_transfer_slots = 1;  // T_k, in time intervals
  int release_slot = 0;     // t at which the file joins K(t)
};

/// Throws std::invalid_argument when the request is malformed with respect
/// to the topology (bad endpoints, non-positive size or deadline).
inline void validate(const FileRequest& file, const Topology& topology) {
  const int n = topology.num_datacenters();
  if (file.source < 0 || file.source >= n || file.destination < 0 ||
      file.destination >= n) {
    throw std::invalid_argument("file endpoint outside topology");
  }
  if (file.source == file.destination) {
    throw std::invalid_argument("file source equals destination");
  }
  if (file.size <= 0.0) throw std::invalid_argument("file size must be positive");
  if (file.max_transfer_slots < 1) {
    throw std::invalid_argument("transfer deadline must be at least one slot");
  }
  if (file.release_slot < 0) {
    throw std::invalid_argument("release slot must be non-negative");
  }
}

/// Longest deadline in a batch; 0 for an empty batch.
inline int max_deadline(const std::vector<FileRequest>& files) {
  int m = 0;
  for (const FileRequest& f : files) m = std::max(m, f.max_transfer_slots);
  return m;
}

/// Index of the hardest-to-place file — the one with the largest required
/// per-slot rate F_k / T_k. Used by the admission loops of both policies to
/// pick a victim when a batch cannot be scheduled; -1 for an empty batch.
inline int heaviest_file(const std::vector<FileRequest>& files) {
  int pick = -1;
  double worst = -1.0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const double rate = files[i].size / files[i].max_transfer_slots;
    if (rate > worst) {
      worst = rate;
      pick = static_cast<int>(i);
    }
  }
  return pick;
}

}  // namespace postcard::net
