#include "net/time_expanded.h"

#include <stdexcept>

namespace postcard::net {

TimeExpandedGraph::TimeExpandedGraph(const Topology& topology, int start_slot,
                                     int horizon,
                                     const ResidualCapacityFn& residual,
                                     double storage_capacity,
                                     bool enable_storage)
    : n_(topology.num_datacenters()), start_slot_(start_slot), horizon_(horizon) {
  if (horizon < 1) throw std::invalid_argument("horizon must be >= 1");
  if (start_slot < 0) throw std::invalid_argument("start slot must be >= 0");

  layer_begin_.reserve(static_cast<std::size_t>(horizon) + 1);
  arcs_.reserve(static_cast<std::size_t>(horizon) *
                (topology.num_links() + (enable_storage ? n_ : 0)));
  for (int layer = 0; layer < horizon; ++layer) {
    layer_begin_.push_back(static_cast<int>(arcs_.size()));
    const int slot = start_slot + layer;
    for (int l = 0; l < topology.num_links(); ++l) {
      const Link& link = topology.link(l);
      const double cap = residual ? residual(l, slot) : link.capacity;
      arcs_.push_back({link.from, link.to, layer, l, std::max(0.0, cap),
                       link.unit_cost});
    }
    if (enable_storage) {
      for (int i = 0; i < n_; ++i) {
        arcs_.push_back({i, i, layer, -1, storage_capacity, 0.0});
      }
    }
  }
  layer_begin_.push_back(static_cast<int>(arcs_.size()));
}

}  // namespace postcard::net
