#include "net/topology.h"

#include <algorithm>
#include <stdexcept>

namespace postcard::net {

Topology::Topology(int num_datacenters) : n_(num_datacenters) {
  if (num_datacenters <= 0) {
    throw std::invalid_argument("topology needs at least one datacenter");
  }
  index_.assign(static_cast<std::size_t>(n_) * n_, -1);
  out_.resize(static_cast<std::size_t>(n_));
}

Topology Topology::complete(int num_datacenters, double capacity,
                            const std::function<double(int, int)>& cost_fn) {
  Topology t(num_datacenters);
  for (int i = 0; i < num_datacenters; ++i) {
    for (int j = 0; j < num_datacenters; ++j) {
      if (i != j) t.set_link(i, j, capacity, cost_fn(i, j));
    }
  }
  return t;
}

void Topology::set_link(int from, int to, double capacity, double unit_cost) {
  if (from < 0 || from >= n_ || to < 0 || to >= n_) {
    throw std::out_of_range("link endpoint outside topology");
  }
  if (from == to) throw std::invalid_argument("self-links are not allowed");
  if (capacity < 0.0 || unit_cost < 0.0) {
    throw std::invalid_argument("capacity and cost must be non-negative");
  }
  const int existing = index_[static_cast<std::size_t>(from) * n_ + to];
  if (existing >= 0) {
    links_[existing].capacity = capacity;
    links_[existing].unit_cost = unit_cost;
    return;
  }
  const int idx = static_cast<int>(links_.size());
  index_[static_cast<std::size_t>(from) * n_ + to] = idx;
  links_.push_back({from, to, capacity, unit_cost});
  // Keep the adjacency sorted by destination (see out_links()).
  std::vector<int>& out = out_[static_cast<std::size_t>(from)];
  const auto pos = std::upper_bound(
      out.begin(), out.end(), to,
      [this](int t, int link) { return t < links_[link].to; });
  out.insert(pos, idx);
}

void Topology::set_capacity(int link_index, double capacity) {
  if (link_index < 0 || link_index >= num_links()) {
    throw std::out_of_range("link index outside topology");
  }
  if (capacity < 0.0) throw std::invalid_argument("capacity must be non-negative");
  links_[static_cast<std::size_t>(link_index)].capacity = capacity;
}

int Topology::link_index(int from, int to) const {
  if (from < 0 || from >= n_ || to < 0 || to >= n_) return -1;
  return index_[static_cast<std::size_t>(from) * n_ + to];
}

double Topology::capacity(int from, int to) const {
  const int idx = link_index(from, to);
  return idx >= 0 ? links_[idx].capacity : 0.0;
}

double Topology::unit_cost(int from, int to) const {
  const int idx = link_index(from, to);
  return idx >= 0 ? links_[idx].unit_cost : 0.0;
}

}  // namespace postcard::net
