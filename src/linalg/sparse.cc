#include "linalg/sparse.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace postcard::linalg {

SparseMatrix SparseMatrix::from_triplets(Index rows, Index cols,
                                         const std::vector<Triplet>& triplets,
                                         double drop_tol) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative dimension");
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      throw std::out_of_range("triplet coordinate outside matrix");
    }
  }

  // Count entries per column, then bucket-sort triplets into CSC order.
  std::vector<Index> count(static_cast<std::size_t>(cols) + 1, 0);
  for (const Triplet& t : triplets) ++count[t.col + 1];
  for (Index j = 0; j < cols; ++j) count[j + 1] += count[j];

  std::vector<Index> row_idx(triplets.size());
  std::vector<double> values(triplets.size());
  std::vector<Index> next(count.begin(), count.end() - 1);
  for (const Triplet& t : triplets) {
    const Index pos = next[t.col]++;
    row_idx[pos] = t.row;
    values[pos] = t.value;
  }

  // Sort each column by row, summing duplicates and dropping small entries.
  SparseMatrix a;
  a.rows_ = rows;
  a.cols_ = cols;
  a.col_ptr_.assign(static_cast<std::size_t>(cols) + 1, 0);
  a.row_idx_.reserve(triplets.size());
  a.values_.reserve(triplets.size());

  std::vector<std::pair<Index, double>> column;
  for (Index j = 0; j < cols; ++j) {
    column.clear();
    for (Index p = count[j]; p < count[j + 1]; ++p) {
      column.emplace_back(row_idx[p], values[p]);
    }
    std::sort(column.begin(), column.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (std::size_t i = 0; i < column.size();) {
      Index r = column[i].first;
      double sum = 0.0;
      while (i < column.size() && column[i].first == r) sum += column[i++].second;
      if (std::abs(sum) > drop_tol) {
        a.row_idx_.push_back(r);
        a.values_.push_back(sum);
      }
    }
    a.col_ptr_[j + 1] = static_cast<Index>(a.row_idx_.size());
  }
  return a;
}

void SparseMatrix::append_columns(Index new_cols,
                                  const std::vector<Triplet>& triplets,
                                  std::size_t first) {
  if (new_cols < 0) throw std::invalid_argument("negative column count");
  const Index lo = cols_;
  const Index hi = cols_ + new_cols;
  std::vector<Triplet> tail(
      triplets.begin() + static_cast<std::ptrdiff_t>(first), triplets.end());
  for (const Triplet& t : tail) {
    if (t.row < 0 || t.row >= rows_ || t.col < lo || t.col >= hi) {
      throw std::out_of_range("triplet outside appended column range");
    }
  }
  std::sort(tail.begin(), tail.end(), [](const Triplet& x, const Triplet& y) {
    return x.col != y.col ? x.col < y.col : x.row < y.row;
  });
  col_ptr_.reserve(static_cast<std::size_t>(hi) + 1);
  row_idx_.reserve(row_idx_.size() + tail.size());
  values_.reserve(values_.size() + tail.size());
  std::size_t p = 0;
  for (Index j = lo; j < hi; ++j) {
    while (p < tail.size() && tail[p].col == j) {
      const Index r = tail[p].row;
      double sum = 0.0;
      while (p < tail.size() && tail[p].col == j && tail[p].row == r) {
        sum += tail[p++].value;
      }
      if (std::abs(sum) > 0.0) {
        row_idx_.push_back(r);
        values_.push_back(sum);
      }
    }
    col_ptr_.push_back(static_cast<Index>(row_idx_.size()));
  }
  cols_ = hi;
}

SparseMatrix SparseMatrix::from_csc(Index rows, Index cols,
                                    std::vector<Index> col_ptr,
                                    std::vector<Index> row_idx,
                                    std::vector<double> values) {
  if (col_ptr.size() != static_cast<std::size_t>(cols) + 1) {
    throw std::invalid_argument("col_ptr size mismatch");
  }
  if (row_idx.size() != values.size()) {
    throw std::invalid_argument("row_idx/values size mismatch");
  }
  for (Index j = 0; j < cols; ++j) {
    if (col_ptr[j] > col_ptr[j + 1]) throw std::invalid_argument("col_ptr not monotone");
    for (Index p = col_ptr[j]; p + 1 < col_ptr[j + 1]; ++p) {
      if (row_idx[p] >= row_idx[p + 1]) {
        throw std::invalid_argument("rows within a column must be strictly increasing");
      }
    }
  }
  SparseMatrix a;
  a.rows_ = rows;
  a.cols_ = cols;
  a.col_ptr_ = std::move(col_ptr);
  a.row_idx_ = std::move(row_idx);
  a.values_ = std::move(values);
  return a;
}

void SparseMatrix::multiply(const Vector& x, Vector& y) const {
  assert(static_cast<Index>(x.size()) == cols_);
  y.assign(static_cast<std::size_t>(rows_), 0.0);
  for (Index j = 0; j < cols_; ++j) {
    const double xj = x[j];
    if (xj == 0.0) continue;
    for (Index p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      y[row_idx_[p]] += values_[p] * xj;
    }
  }
}

void SparseMatrix::multiply_transpose(const Vector& x, Vector& y) const {
  assert(static_cast<Index>(x.size()) == rows_);
  y.assign(static_cast<std::size_t>(cols_), 0.0);
  for (Index j = 0; j < cols_; ++j) {
    double s = 0.0;
    for (Index p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      s += values_[p] * x[row_idx_[p]];
    }
    y[j] = s;
  }
}

SparseMatrix SparseMatrix::transpose() const {
  std::vector<Index> count(static_cast<std::size_t>(rows_) + 1, 0);
  for (Index r : row_idx_) ++count[r + 1];
  for (Index i = 0; i < rows_; ++i) count[i + 1] += count[i];

  std::vector<Index> col_ptr(count);
  std::vector<Index> row_idx(values_.size());
  std::vector<double> values(values_.size());
  std::vector<Index> next(count.begin(), count.end() - 1);
  for (Index j = 0; j < cols_; ++j) {
    for (Index p = col_ptr_[j]; p < col_ptr_[j + 1]; ++p) {
      const Index pos = next[row_idx_[p]]++;
      row_idx[pos] = j;  // column index of A becomes row index of A^T
      values[pos] = values_[p];
    }
  }
  // Column-major traversal of A emits entries of A^T with increasing "row"
  // (= original column) inside each new column, so the result is canonical.
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.col_ptr_ = std::move(col_ptr);
  t.row_idx_ = std::move(row_idx);
  t.values_ = std::move(values);
  return t;
}

double SparseMatrix::coeff(Index row, Index col) const {
  assert(row >= 0 && row < rows_ && col >= 0 && col < cols_);
  const auto begin = row_idx_.begin() + col_ptr_[col];
  const auto end = row_idx_.begin() + col_ptr_[col + 1];
  const auto it = std::lower_bound(begin, end, row);
  if (it == end || *it != row) return 0.0;
  return values_[static_cast<std::size_t>(it - row_idx_.begin())];
}

}  // namespace postcard::linalg
