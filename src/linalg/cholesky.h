// Sparse LDL^T factorization for symmetric (quasi-)definite systems.
//
// Used by the interior-point method to factor the normal-equations matrix
// A Theta A^T, whose sparsity pattern is fixed across iterations while the
// numerical values change. The workflow is therefore split:
//
//   LdlSolver solver;
//   solver.analyze(pattern_matrix);   // ordering + elimination tree, once
//   solver.factorize(matrix);        // numeric LDL^T, per iteration
//   solver.solve(rhs);               // triangular solves, per rhs
//
// Ordering is reverse Cuthill-McKee: simple, deterministic, and effective on
// the banded-ish time-expanded structures this project produces. Numeric
// factorization is the up-looking LDL^T algorithm (Davis' LDL), with a small
// diagonal regularization floor so slightly indefinite iterates (late IPM
// iterations) do not abort the factorization.
#pragma once

#include <vector>

#include "linalg/dense.h"
#include "linalg/sparse.h"

namespace postcard::linalg {

/// Reverse Cuthill-McKee ordering of a symmetric matrix's adjacency
/// structure. Returns perm with perm[new_label] = old_label.
std::vector<Index> rcm_ordering(const SparseMatrix& sym);

class LdlSolver {
 public:
  struct Options {
    double regularization = 1e-12;  // floor applied to pivots d_k
  };

  LdlSolver() : LdlSolver(Options{}) {}
  explicit LdlSolver(Options options) : options_(options) {}

  /// Symbolic analysis of a full symmetric matrix (both triangles stored).
  /// Computes the fill-reducing ordering, elimination tree, and the exact
  /// nonzero counts of L. Must be called before factorize().
  void analyze(const SparseMatrix& sym);

  /// Numeric factorization. `sym` must have the same dimension and sparsity
  /// pattern as the matrix passed to analyze(). Returns the number of pivots
  /// that hit the regularization floor (0 for a cleanly positive-definite
  /// matrix).
  int factorize(const SparseMatrix& sym);

  /// Solves (P^T L D L^T P) x = rhs in place.
  void solve(Vector& rhs) const;

  Index dimension() const { return n_; }
  Index l_nonzeros() const { return static_cast<Index>(l_val_.size()); }

 private:
  Options options_;
  Index n_ = 0;

  std::vector<Index> perm_;     // perm_[new] = old
  std::vector<Index> inv_;      // inv_[old] = new

  // Permuted upper triangle (CSC, row <= col), with a gather map back into
  // the original matrix's value array.
  std::vector<Index> up_ptr_, up_row_;
  std::vector<Index> up_src_;   // position in original values()

  std::vector<Index> parent_;   // elimination tree
  std::vector<Index> l_colcount_;

  // L (strictly lower part; unit diagonal implicit), D diagonal.
  std::vector<Index> l_ptr_, l_idx_;
  std::vector<double> l_val_;
  Vector d_;

  // Scratch for numeric factorization and solves.
  mutable Vector work_;
};

}  // namespace postcard::linalg
