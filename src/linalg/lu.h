// Sparse LU factorization for simplex basis matrices.
//
// The factorization is a left-looking Gilbert-Peierls LU with partial
// pivoting: columns are processed in a fill-reducing order (fewest nonzeros
// first) and each column is obtained by a sparse triangular solve whose
// nonzero pattern is discovered by depth-first search. The result satisfies
//     L * U = P * B * Q
// with unit-lower-triangular L, upper-triangular U, row permutation P (from
// pivoting) and column permutation Q (from the ordering).
//
// Between refactorizations the basis is maintained with product-form-of-the-
// inverse (PFI) eta updates: replacing the basic variable at position p by a
// column whose FTRAN image is w multiplies B by the elementary matrix E that
// is the identity with column p replaced by w. FTRAN/BTRAN apply the eta file
// after/before the triangular solves.
#pragma once

#include <vector>

#include "linalg/dense.h"
#include "linalg/sparse.h"

namespace postcard::linalg {

enum class FactorStatus {
  kOk,
  kSingular,  // no acceptable pivot in some column
};

class LuFactorization {
 public:
  struct Options {
    double pivot_tol = 1e-11;      // smallest acceptable pivot magnitude
    double eta_pivot_tol = 1e-7;   // smallest acceptable eta pivot |w_p|
    int max_updates = 64;          // advise refactorization after this many etas
  };

  LuFactorization() : LuFactorization(Options{}) {}
  explicit LuFactorization(Options options) : options_(options) {}

  /// Factorizes the square matrix B, replacing any previous factorization and
  /// clearing the eta file.
  FactorStatus factorize(const SparseMatrix& b);

  /// Solves B x = rhs in place (rhs holds x on return). Requires a successful
  /// factorize(); includes all eta updates applied since.
  void ftran(Vector& rhs) const;

  /// Solves B^T x = rhs in place.
  void btran(Vector& rhs) const;

  /// Applies a PFI update: the basic column at position `pos` is replaced by
  /// a column whose FTRAN image (B^{-1} a_entering) is `w`. Returns false if
  /// |w[pos]| is below the eta pivot tolerance, in which case the caller must
  /// refactorize instead.
  bool update(const Vector& w, Index pos);

  /// Number of eta updates applied since the last factorize().
  int updates() const { return static_cast<int>(etas_.size()); }

  /// True once `updates()` exceeds the configured budget; callers should
  /// refactorize at the next convenient point.
  bool should_refactorize() const {
    return updates() >= options_.max_updates;
  }

  Index dimension() const { return n_; }

 private:
  struct Eta {
    Index pos = 0;                 // basis position being replaced
    double pivot = 0.0;            // w[pos]
    std::vector<Index> idx;        // off-pivot nonzero positions of w
    std::vector<double> val;       // matching values
  };

  void base_ftran(Vector& x) const;   // (LU, P, Q) solve without etas
  void base_btran(Vector& x) const;

  Options options_;
  Index n_ = 0;

  // L: unit lower triangular, diagonal stored explicitly (value 1, first
  // entry of each column); row indices are in pivotal order.
  std::vector<Index> l_ptr_, l_idx_;
  std::vector<double> l_val_;
  // U: upper triangular, diagonal stored last in each column.
  std::vector<Index> u_ptr_, u_idx_;
  std::vector<double> u_val_;

  std::vector<Index> pinv_;   // pinv_[original row] = pivotal position
  std::vector<Index> q_;      // q_[pivotal col] = original column

  std::vector<Eta> etas_;

  // Scratch reused across solves (sized n_).
  mutable Vector work_;
};

}  // namespace postcard::linalg
