#include "linalg/cholesky.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace postcard::linalg {

std::vector<Index> rcm_ordering(const SparseMatrix& sym) {
  const Index n = sym.rows();
  assert(sym.cols() == n);
  std::vector<Index> degree(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) degree[j] = sym.col_end(j) - sym.col_begin(j);

  std::vector<Index> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<Index> queue;
  std::vector<Index> neighbors;

  // Seed each connected component from its minimum-degree node.
  std::vector<Index> by_degree(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) by_degree[i] = i;
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](Index a, Index b) { return degree[a] < degree[b]; });

  for (Index seed : by_degree) {
    if (visited[seed]) continue;
    queue.clear();
    queue.push_back(seed);
    visited[seed] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Index u = queue[head];
      order.push_back(u);
      neighbors.clear();
      for (Index p = sym.col_begin(u); p < sym.col_end(u); ++p) {
        const Index v = sym.row_idx()[p];
        if (!visited[v]) {
          visited[v] = 1;
          neighbors.push_back(v);
        }
      }
      std::stable_sort(neighbors.begin(), neighbors.end(),
                       [&](Index a, Index b) { return degree[a] < degree[b]; });
      queue.insert(queue.end(), neighbors.begin(), neighbors.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

void LdlSolver::analyze(const SparseMatrix& sym) {
  if (sym.rows() != sym.cols()) throw std::invalid_argument("matrix not square");
  n_ = sym.rows();
  perm_ = rcm_ordering(sym);
  inv_.assign(static_cast<std::size_t>(n_), 0);
  for (Index k = 0; k < n_; ++k) inv_[perm_[k]] = k;

  // Build the permuted upper triangle structure (row <= col) and remember,
  // for each structural slot, where in sym.values() its number lives. Only
  // the original lower-or-equal triangle (i >= j) is consumed so each
  // symmetric pair contributes exactly one slot.
  struct Slot {
    Index row, col, src;
  };
  std::vector<Slot> slots;
  slots.reserve(static_cast<std::size_t>(sym.nonzeros()) / 2 + n_);
  for (Index j = 0; j < n_; ++j) {
    for (Index p = sym.col_begin(j); p < sym.col_end(j); ++p) {
      const Index i = sym.row_idx()[p];
      if (i < j) continue;  // take one triangle only
      const Index pi = inv_[i];
      const Index pj = inv_[j];
      slots.push_back({std::min(pi, pj), std::max(pi, pj), p});
    }
  }
  std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
    return a.col != b.col ? a.col < b.col : a.row < b.row;
  });

  up_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  up_row_.resize(slots.size());
  up_src_.resize(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) {
    up_row_[s] = slots[s].row;
    up_src_[s] = slots[s].src;
    ++up_ptr_[slots[s].col + 1];
  }
  for (Index j = 0; j < n_; ++j) up_ptr_[j + 1] += up_ptr_[j];

  // Elimination tree and column counts of L (Davis, LDL symbolic phase).
  parent_.assign(static_cast<std::size_t>(n_), -1);
  l_colcount_.assign(static_cast<std::size_t>(n_), 0);
  std::vector<Index> flag(static_cast<std::size_t>(n_), -1);
  for (Index k = 0; k < n_; ++k) {
    flag[k] = k;
    for (Index p = up_ptr_[k]; p < up_ptr_[k + 1]; ++p) {
      Index i = up_row_[p];
      if (i >= k) continue;
      while (flag[i] != k) {
        if (parent_[i] == -1) parent_[i] = k;
        ++l_colcount_[i];  // L(k,i) is structurally nonzero
        flag[i] = k;
        i = parent_[i];
      }
    }
  }

  l_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (Index j = 0; j < n_; ++j) l_ptr_[j + 1] = l_ptr_[j] + l_colcount_[j];
  l_idx_.assign(static_cast<std::size_t>(l_ptr_[n_]), 0);
  l_val_.assign(static_cast<std::size_t>(l_ptr_[n_]), 0.0);
  d_.assign(static_cast<std::size_t>(n_), 0.0);
  work_.assign(static_cast<std::size_t>(n_), 0.0);
}

int LdlSolver::factorize(const SparseMatrix& sym) {
  if (sym.rows() != n_ || sym.cols() != n_) {
    throw std::invalid_argument("factorize: dimension differs from analyze");
  }
  const std::vector<double>& vals = sym.values();
  if (up_src_.size() > vals.size()) {
    throw std::invalid_argument("factorize: pattern differs from analyze");
  }

  int regularized = 0;
  Vector& y = work_;
  std::vector<Index> flag(static_cast<std::size_t>(n_), -1);
  std::vector<Index> pattern(static_cast<std::size_t>(n_));
  std::vector<Index> lnz(static_cast<std::size_t>(n_), 0);  // filled entries per col

  for (Index k = 0; k < n_; ++k) {
    // Scatter the permuted column k of the upper triangle into y; collect the
    // row-k pattern of L in topological order via the elimination tree.
    Index top = n_;
    flag[k] = k;
    y[k] = 0.0;
    double dk = 0.0;
    for (Index p = up_ptr_[k]; p < up_ptr_[k + 1]; ++p) {
      const Index i = up_row_[p];
      const double v = vals[up_src_[p]];
      if (i == k) {
        dk += v;
        continue;
      }
      y[i] += v;
      Index len = 0;
      Index node = i;
      while (flag[node] != k) {
        pattern[len++] = node;
        flag[node] = k;
        node = parent_[node];
      }
      while (len > 0) pattern[--top] = pattern[--len];
    }

    // Numeric sparse triangular solve across the row pattern.
    for (Index p2 = top; p2 < n_; ++p2) {
      const Index i = pattern[p2];
      const double yi = y[i];
      y[i] = 0.0;
      const double lki = yi / d_[i];
      for (Index q = l_ptr_[i]; q < l_ptr_[i] + lnz[i]; ++q) {
        y[l_idx_[q]] -= l_val_[q] * yi;
      }
      dk -= lki * yi;
      l_idx_[l_ptr_[i] + lnz[i]] = k;
      l_val_[l_ptr_[i] + lnz[i]] = lki;
      ++lnz[i];
    }
    if (dk < options_.regularization) {
      dk = options_.regularization;
      ++regularized;
    }
    d_[k] = dk;
  }
  return regularized;
}

void LdlSolver::solve(Vector& rhs) const {
  assert(static_cast<Index>(rhs.size()) == n_);
  Vector& y = work_;
  for (Index k = 0; k < n_; ++k) y[k] = rhs[perm_[k]];
  // L y = y (unit diagonal implicit).
  for (Index j = 0; j < n_; ++j) {
    const double yj = y[j];
    if (yj == 0.0) continue;
    for (Index p = l_ptr_[j]; p < l_ptr_[j + 1]; ++p) {
      y[l_idx_[p]] -= l_val_[p] * yj;
    }
  }
  for (Index j = 0; j < n_; ++j) y[j] /= d_[j];
  // L^T y = y.
  for (Index j = n_ - 1; j >= 0; --j) {
    double s = y[j];
    for (Index p = l_ptr_[j]; p < l_ptr_[j + 1]; ++p) {
      s -= l_val_[p] * y[l_idx_[p]];
    }
    y[j] = s;
  }
  for (Index k = 0; k < n_; ++k) rhs[perm_[k]] = y[k];
}

}  // namespace postcard::linalg
