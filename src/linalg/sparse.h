// Compressed sparse column (CSC) matrix and a triplet builder.
//
// CSC is the natural layout for LP work: the simplex method and the
// interior-point normal equations both consume matrices column-wise.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/dense.h"

namespace postcard::linalg {

using Index = std::int32_t;

/// One (row, col, value) entry used while assembling a matrix.
struct Triplet {
  Index row = 0;
  Index col = 0;
  double value = 0.0;
};

/// Sparse matrix in compressed-sparse-column form. Existing entries are
/// immutable; the matrix can only grow, column-wise, via append_columns().
///
/// Entries within each column are sorted by row index and duplicate
/// coordinates passed to the builder are summed, so the structure is
/// canonical: two matrices with equal dimensions and equal arrays are
/// numerically identical.
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds an m-by-n matrix from unordered triplets. Duplicates are summed;
  /// explicit zeros (including sums that cancel below `drop_tol`) are kept
  /// out of the structure.
  static SparseMatrix from_triplets(Index rows, Index cols,
                                    const std::vector<Triplet>& triplets,
                                    double drop_tol = 0.0);

  /// Builds directly from canonical CSC arrays (sorted rows per column).
  static SparseMatrix from_csc(Index rows, Index cols,
                               std::vector<Index> col_ptr,
                               std::vector<Index> row_idx,
                               std::vector<double> values);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nonzeros() const { return static_cast<Index>(values_.size()); }

  const std::vector<Index>& col_ptr() const { return col_ptr_; }
  const std::vector<Index>& row_idx() const { return row_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Begin/end offsets of column j in row_idx()/values().
  Index col_begin(Index j) const { return col_ptr_[j]; }
  Index col_end(Index j) const { return col_ptr_[j + 1]; }

  /// y = A * x   (y sized rows()).
  void multiply(const Vector& x, Vector& y) const;
  /// y = A^T * x (y sized cols()).
  void multiply_transpose(const Vector& x, Vector& y) const;

  /// Returns A^T as a new CSC matrix (equivalently: this matrix in CSR).
  SparseMatrix transpose() const;

  /// Grows the matrix in place by `new_cols` columns assembled from
  /// `triplets[first..]`, every one of which must address the appended
  /// column range [cols(), cols() + new_cols). Existing columns are
  /// untouched; the new columns get the same canonical form as
  /// from_triplets (rows sorted, duplicates summed, exact-zero sums
  /// dropped). This is the incremental path for append-only LP models.
  void append_columns(Index new_cols, const std::vector<Triplet>& triplets,
                      std::size_t first = 0);

  /// Dense element lookup (binary search within the column); O(log nnz_col).
  double coeff(Index row, Index col) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<Index> col_ptr_;   // size cols_+1
  std::vector<Index> row_idx_;   // size nnz
  std::vector<double> values_;   // size nnz
};

}  // namespace postcard::linalg
