#include "linalg/lu.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace postcard::linalg {
namespace {

// Depth-first search from node `start` over the graph of L (columns indexed
// through pinv), pushing nodes onto `order` in reverse-topological order.
// Nodes whose rows are not yet pivotal are leaves. Iterative to avoid stack
// overflow on long chains.
void reach_dfs(Index start, const std::vector<Index>& l_ptr,
               const std::vector<Index>& l_idx, const std::vector<Index>& pinv,
               std::vector<char>& visited, std::vector<Index>& stack,
               std::vector<Index>& pos_stack, std::vector<Index>& order) {
  if (visited[start]) return;
  stack.clear();
  pos_stack.clear();
  stack.push_back(start);
  // pos_stack mirrors stack: next child offset to explore for each frame.
  pos_stack.push_back(0);
  visited[start] = 1;
  while (!stack.empty()) {
    const Index node = stack.back();
    const Index col = pinv[node];  // column of L associated with this row
    bool descended = false;
    if (col >= 0) {
      // Skip the unit diagonal (first entry of the column).
      Index p = l_ptr[col] + 1 + pos_stack.back();
      const Index end = l_ptr[col + 1];
      for (; p < end; ++p) {
        const Index child = l_idx[p];
        pos_stack.back() = p - (l_ptr[col] + 1) + 1;
        if (!visited[child]) {
          visited[child] = 1;
          stack.push_back(child);
          pos_stack.push_back(0);
          descended = true;
          break;
        }
      }
    }
    if (!descended) {
      order.push_back(node);
      stack.pop_back();
      pos_stack.pop_back();
    }
  }
}

}  // namespace

FactorStatus LuFactorization::factorize(const SparseMatrix& b) {
  assert(b.rows() == b.cols());
  n_ = b.rows();
  etas_.clear();
  work_.assign(static_cast<std::size_t>(n_), 0.0);

  // Column ordering: fewest nonzeros first — a cheap fill-reducing heuristic
  // that works well for the mostly-triangular bases simplex produces.
  q_.resize(static_cast<std::size_t>(n_));
  std::iota(q_.begin(), q_.end(), 0);
  std::stable_sort(q_.begin(), q_.end(), [&b](Index x, Index y) {
    return b.col_end(x) - b.col_begin(x) < b.col_end(y) - b.col_begin(y);
  });

  pinv_.assign(static_cast<std::size_t>(n_), -1);
  l_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  u_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  l_idx_.clear();
  l_val_.clear();
  u_idx_.clear();
  u_val_.clear();
  // Rough guess; vectors grow as needed.
  l_idx_.reserve(static_cast<std::size_t>(b.nonzeros()) * 2);
  l_val_.reserve(static_cast<std::size_t>(b.nonzeros()) * 2);
  u_idx_.reserve(static_cast<std::size_t>(b.nonzeros()) * 2);
  u_val_.reserve(static_cast<std::size_t>(b.nonzeros()) * 2);

  Vector x(static_cast<std::size_t>(n_), 0.0);
  std::vector<char> visited(static_cast<std::size_t>(n_), 0);
  std::vector<Index> order, stack, pos_stack;
  order.reserve(static_cast<std::size_t>(n_));

  for (Index k = 0; k < n_; ++k) {
    l_ptr_[k] = static_cast<Index>(l_idx_.size());
    u_ptr_[k] = static_cast<Index>(u_idx_.size());
    const Index col = q_[k];

    // Pattern of x = L \ B(:,col): DFS reach over current L.
    order.clear();
    for (Index p = b.col_begin(col); p < b.col_end(col); ++p) {
      reach_dfs(b.row_idx()[p], l_ptr_, l_idx_, pinv_, visited, stack,
                pos_stack, order);
    }
    // `order` is reverse-topological; process from the back for the numeric
    // triangular solve.
    for (Index p = b.col_begin(col); p < b.col_end(col); ++p) {
      x[b.row_idx()[p]] = b.values()[p];
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const Index i = *it;
      const Index lcol = pinv_[i];
      if (lcol < 0) continue;  // row not pivotal: stays in the active part
      const double xi = x[i];
      if (xi == 0.0) continue;
      for (Index p = l_ptr_[lcol] + 1; p < l_ptr_[lcol + 1]; ++p) {
        x[l_idx_[p]] -= l_val_[p] * xi;
      }
    }

    // Partial pivoting: largest magnitude among not-yet-pivotal rows.
    Index ipiv = -1;
    double best = 0.0;
    for (Index i : order) {
      if (pinv_[i] < 0) {
        const double a = std::abs(x[i]);
        if (a > best) {
          best = a;
          ipiv = i;
        }
      }
    }
    if (ipiv < 0 || best <= options_.pivot_tol) {
      // Clean scratch before bailing out.
      for (Index i : order) {
        x[i] = 0.0;
        visited[i] = 0;
      }
      return FactorStatus::kSingular;
    }

    // Emit U(:,k): entries in already-pivotal rows, diagonal last.
    for (Index i : order) {
      if (pinv_[i] >= 0 && x[i] != 0.0) {
        u_idx_.push_back(pinv_[i]);
        u_val_.push_back(x[i]);
      }
    }
    const double pivot = x[ipiv];
    u_idx_.push_back(k);
    u_val_.push_back(pivot);
    pinv_[ipiv] = k;

    // Emit L(:,k): unit diagonal first, then below-diagonal entries scaled by
    // the pivot. Row indices are original; remapped to pivotal order below.
    l_idx_.push_back(ipiv);
    l_val_.push_back(1.0);
    for (Index i : order) {
      if (pinv_[i] < 0 && x[i] != 0.0) {
        l_idx_.push_back(i);
        l_val_.push_back(x[i] / pivot);
      }
    }

    for (Index i : order) {
      x[i] = 0.0;
      visited[i] = 0;
    }
  }
  l_ptr_[n_] = static_cast<Index>(l_idx_.size());
  u_ptr_[n_] = static_cast<Index>(u_idx_.size());

  // Remap L's row indices into pivotal order so both factors live in the
  // permuted index space.
  for (Index& i : l_idx_) i = pinv_[i];
  return FactorStatus::kOk;
}

void LuFactorization::base_ftran(Vector& x) const {
  // x := Q * (U \ (L \ (P x))).
  Vector& y = work_;
  for (Index i = 0; i < n_; ++i) y[pinv_[i]] = x[i];
  // Forward solve L y = y (unit diagonal first in each column).
  for (Index j = 0; j < n_; ++j) {
    const double yj = y[j];
    if (yj == 0.0) continue;
    for (Index p = l_ptr_[j] + 1; p < l_ptr_[j + 1]; ++p) {
      y[l_idx_[p]] -= l_val_[p] * yj;
    }
  }
  // Backward solve U y = y (diagonal last in each column).
  for (Index j = n_ - 1; j >= 0; --j) {
    const Index diag = u_ptr_[j + 1] - 1;
    const double yj = y[j] / u_val_[diag];
    y[j] = yj;
    if (yj == 0.0) continue;
    for (Index p = u_ptr_[j]; p < diag; ++p) {
      y[u_idx_[p]] -= u_val_[p] * yj;
    }
  }
  for (Index k = 0; k < n_; ++k) x[q_[k]] = y[k];
}

void LuFactorization::base_btran(Vector& x) const {
  // Solve B^T y = x where B = P^T L U Q^T:  y = P^T (L^T \ (U^T \ (Q^T x))).
  Vector& y = work_;
  for (Index k = 0; k < n_; ++k) y[k] = x[q_[k]];
  // Forward solve U^T v = y: column j of U gives row j of U^T.
  for (Index j = 0; j < n_; ++j) {
    double s = y[j];
    const Index diag = u_ptr_[j + 1] - 1;
    for (Index p = u_ptr_[j]; p < diag; ++p) {
      s -= u_val_[p] * y[u_idx_[p]];
    }
    y[j] = s / u_val_[diag];
  }
  // Backward solve L^T w = v.
  for (Index j = n_ - 1; j >= 0; --j) {
    double s = y[j];
    for (Index p = l_ptr_[j] + 1; p < l_ptr_[j + 1]; ++p) {
      s -= l_val_[p] * y[l_idx_[p]];
    }
    y[j] = s;
  }
  for (Index i = 0; i < n_; ++i) x[i] = y[pinv_[i]];
}

void LuFactorization::ftran(Vector& rhs) const {
  assert(static_cast<Index>(rhs.size()) == n_);
  base_ftran(rhs);
  // Apply eta inverses in application order: B = B0 E1 E2 ... Ek, so
  // x = Ek^{-1} ... E1^{-1} B0^{-1} b.
  for (const Eta& e : etas_) {
    const double zp = rhs[e.pos] / e.pivot;
    rhs[e.pos] = zp;
    if (zp == 0.0) continue;
    for (std::size_t i = 0; i < e.idx.size(); ++i) {
      rhs[e.idx[i]] -= e.val[i] * zp;
    }
  }
}

void LuFactorization::btran(Vector& rhs) const {
  assert(static_cast<Index>(rhs.size()) == n_);
  // B^T = Ek^T ... E1^T B0^T: peel eta transposes in reverse order first.
  for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
    const Eta& e = *it;
    double s = rhs[e.pos];
    for (std::size_t i = 0; i < e.idx.size(); ++i) {
      s -= e.val[i] * rhs[e.idx[i]];
    }
    rhs[e.pos] = s / e.pivot;
  }
  base_btran(rhs);
}

bool LuFactorization::update(const Vector& w, Index pos) {
  assert(static_cast<Index>(w.size()) == n_);
  assert(pos >= 0 && pos < n_);
  const double pivot = w[pos];
  if (std::abs(pivot) < options_.eta_pivot_tol) return false;
  Eta e;
  e.pos = pos;
  e.pivot = pivot;
  // Count first so the eta arrays are sized exactly once — this runs every
  // pivot, and the transformed column carries enough fill that growing the
  // vectors geometrically shows up in profiles.
  Index nnz = 0;
  for (Index i = 0; i < n_; ++i) {
    if (i != pos && w[i] != 0.0) ++nnz;
  }
  e.idx.reserve(static_cast<std::size_t>(nnz));
  e.val.reserve(static_cast<std::size_t>(nnz));
  for (Index i = 0; i < n_; ++i) {
    if (i != pos && w[i] != 0.0) {
      e.idx.push_back(i);
      e.val.push_back(w[i]);
    }
  }
  etas_.push_back(std::move(e));
  return true;
}

}  // namespace postcard::linalg
