// Dense vector helpers shared across the numerical code.
//
// Vectors are plain std::vector<double>; these free functions keep the
// call sites readable without dragging in a full linear-algebra type.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <vector>

namespace postcard::linalg {

using Vector = std::vector<double>;

/// Dot product <x, y>. Sizes must match.
inline double dot(const Vector& x, const Vector& y) {
  assert(x.size() == y.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

/// y += alpha * x.
inline void axpy(double alpha, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x *= alpha.
inline void scale(Vector& x, double alpha) {
  for (double& v : x) v *= alpha;
}

/// Euclidean norm ||x||_2.
inline double norm2(const Vector& x) { return std::sqrt(dot(x, x)); }

/// Max-norm ||x||_inf.
inline double norm_inf(const Vector& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace postcard::linalg
