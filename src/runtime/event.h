// Typed events driving the online controller runtime.
//
// The runtime is slot-clocked: every event carries the slot at which it
// takes effect, and within a slot events are totally ordered by phase
// (network changes first, then file arrivals, then the slot tick that
// triggers the solve) and by submission sequence number. The sequence
// number is assigned under the queue lock, so any fixed submission order
// yields a bit-for-bit identical drain order — the foundation of the
// runtime's determinism guarantee (see DESIGN.md, "Online controller
// runtime").
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <variant>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "net/file_request.h"

namespace postcard::runtime {

/// A file request enters the system; it joins the batch K(slot) of the
/// event's slot (the request's release slot, as adjusted by the ingress).
struct FileArrival {
  net::FileRequest file;
};

/// An overlay link fails: capacity drops to zero and committed in-flight
/// plans crossing the link at this slot or later must be replanned.
struct LinkDown {
  int link = -1;
};

/// A failed link recovers to its last configured capacity.
struct LinkUp {
  int link = -1;
};

/// The provisioned capacity of a link changes (e.g. an ISP contract
/// update). Takes effect for all future solves; does not trigger replans.
struct CapacityChange {
  int link = -1;
  double capacity = 0.0;
};

/// The slot clock advances: the batch accumulated for this slot is solved
/// and committed. Ordered after every other event of the same slot.
struct SlotTick {
  int slot = 0;
};

/// Chaos injection: the slot's solve on `backend` (-1 = every backend)
/// runs under a pivot budget of `pivot_budget`, simulating a solver that
/// stalled and was cut off by the watchdog. Pivot budgets are
/// deterministic, so a replay with the same stall schedule reproduces the
/// degradation — and the cost series — bit for bit. One-shot: the override
/// clears after the slot's solve.
struct SolverStall {
  int backend = -1;
  long pivot_budget = 0;
};

/// Chaos injection: the slot's solve on `backend` (-1 = every backend)
/// skips the leading degradation-ladder rungs (SolveControls::disable_rungs
/// semantics: >= 1 forces the greedy fallback, >= 2 forces deferral).
/// One-shot, like SolverStall.
struct SolverFault {
  int backend = -1;
  int disable_rungs = 1;
};

using EventPayload = std::variant<LinkDown, LinkUp, CapacityChange,
                                  FileArrival, SlotTick, SolverStall,
                                  SolverFault>;

/// Intra-slot ordering class: 0 network and solver-chaos events, 1
/// arrivals, 2 the tick (so injected stalls/faults always precede the
/// solve they are meant to hit).
int event_phase(const EventPayload& payload);

struct Event {
  int slot = 0;
  std::uint64_t seq = 0;  // global submission order, assigned by the queue
  EventPayload payload;
};

/// Thread-safe priority queue over (slot, phase, seq). Producers push from
/// any thread; the runtime's driver thread pops everything due at the
/// current slot. Events are never reordered relative to an identical
/// submission history.
class EventQueue {
 public:
  /// Observer invoked under the queue lock for every push, with the
  /// assigned sequence number. The replication primary taps pushes here to
  /// ship them to its standby in exactly the order determinism depends on.
  /// The tap must be cheap and must not re-enter the queue; install it
  /// before any producer exists, uninstall by passing nullptr.
  using PushTap = std::function<void(const Event&)>;
  void set_push_tap(PushTap tap) EXCLUDES(mu_);

  /// Enqueues `payload` to fire at `slot`; returns its sequence number.
  std::uint64_t push(int slot, EventPayload payload) EXCLUDES(mu_);

  /// Pops the least (slot, phase, seq) event with slot <= `slot` into
  /// `*out`. Returns false when nothing is due yet.
  bool pop_due(int slot, Event* out) EXCLUDES(mu_);

  /// Slot of the earliest pending event, or -1 when empty.
  int next_slot() const EXCLUDES(mu_);

  std::size_t depth() const EXCLUDES(mu_);
  std::uint64_t pushed_total() const EXCLUDES(mu_);

  /// Every event still queued, in (slot, phase, seq) drain order — the
  /// snapshot path serializes these so a restored runtime replays future
  /// arrivals and scheduled failures identically. O(n log n) copy; callers
  /// are quiescent (the driver between ticks), not the hot path.
  /// When `next_seq_out` is non-null it receives the queue's next sequence
  /// number, captured under the same lock: every push with seq below the
  /// watermark is either drained (its effect is in the runtime state) or
  /// inside the returned pending set, never both — the replication primary
  /// uses this to filter its buffered pushes after shipping a snapshot.
  std::vector<Event> pending(std::uint64_t* next_seq_out = nullptr) const
      EXCLUDES(mu_);

 private:
  struct Entry {
    int slot;
    int phase;
    std::uint64_t seq;
    EventPayload payload;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.slot != b.slot) return a.slot > b.slot;
      if (a.phase != b.phase) return a.phase > b.phase;
      return a.seq > b.seq;
    }
  };

  mutable base::Mutex mu_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_ GUARDED_BY(mu_);
  std::uint64_t next_seq_ GUARDED_BY(mu_) = 0;
  PushTap tap_ GUARDED_BY(mu_);
};

}  // namespace postcard::runtime
