#include "runtime/runtime.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "audit/audit.h"

namespace postcard::runtime {
namespace {

template <class... Ts>
struct overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
overloaded(Ts...) -> overloaded<Ts...>;

// NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
double elapsed_seconds(std::chrono::steady_clock::time_point start) {
  // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ControllerRuntime::ControllerRuntime(net::Topology topology,
                                     RuntimeOptions options)
    : options_(options),
      live_topology_(std::move(topology)),
      queue_(),
      ingress_(live_topology_, queue_),
      pool_(options.worker_threads) {
  if (options_.parallel_groups < 1) {
    throw std::invalid_argument("parallel_groups must be at least 1");
  }
  if (options_.min_group_files < 1) {
    throw std::invalid_argument("min_group_files must be at least 1");
  }
  base_capacity_.reserve(static_cast<std::size_t>(live_topology_.num_links()));
  for (const net::Link& l : live_topology_.links()) {
    base_capacity_.push_back(l.capacity);
  }
  link_down_.assign(static_cast<std::size_t>(live_topology_.num_links()), false);
  if (options_.dedup_submissions) ingress_.enable_dedup();
}

ControllerRuntime::~ControllerRuntime() = default;

int ControllerRuntime::add_postcard_backend(core::PostcardOptions options) {
  auto controller = std::make_unique<core::PostcardController>(
      net::Topology(live_topology_), options);
  auto backend = std::make_unique<Backend>();
  backend->postcard = controller.get();
  backend->policy = std::move(controller);
  backend->stats.name = backend->policy->name();
  backend->stats.audit_armed = options_.audit.active() &&
                               backend->policy->set_audit_controls(options_.audit);
  backends_.push_back(std::move(backend));
  return num_backends() - 1;
}

int ControllerRuntime::add_flow_backend(flow::FlowBaselineOptions options) {
  auto baseline = std::make_unique<flow::FlowBaseline>(
      net::Topology(live_topology_), options);
  auto backend = std::make_unique<Backend>();
  backend->flowbase = baseline.get();
  backend->policy = std::move(baseline);
  backend->stats.name = backend->policy->name();
  backend->stats.audit_armed = options_.audit.active() &&
                               backend->policy->set_audit_controls(options_.audit);
  backends_.push_back(std::move(backend));
  return num_backends() - 1;
}

int ControllerRuntime::add_backend(
    std::unique_ptr<sim::SchedulingPolicy> policy) {
  auto backend = std::make_unique<Backend>();
  backend->policy = std::move(policy);
  backend->stats.name = backend->policy->name();
  // Generic policies may not support audits; audit_armed records the truth
  // so dashboards never assume coverage that is not there.
  backend->stats.audit_armed = options_.audit.active() &&
                               backend->policy->set_audit_controls(options_.audit);
  backends_.push_back(std::move(backend));
  return num_backends() - 1;
}

void ControllerRuntime::apply_capacity(int link, double capacity) {
  live_topology_.set_capacity(link, capacity);
  ingress_.set_link_capacity(link, capacity);
  for (auto& b : backends_) b->policy->set_link_capacity(link, capacity);
}

void ControllerRuntime::on_link_down(int slot, int link) {
  link_down_[static_cast<std::size_t>(link)] = true;
  apply_capacity(link, 0.0);
  if (!options_.replan_on_link_down) return;
  for (auto& b : backends_) {
    if (b->postcard != nullptr) invalidate_plans(*b, slot, link);
    if (b->flowbase != nullptr) invalidate_flows(*b, slot, link);
  }
}

void ControllerRuntime::invalidate_plans(Backend& b, int slot, int link) {
  base::MutexLock ledger(ledger_mu_);
  std::vector<int> affected;
  for (const auto& [id, entry] : b.plans) {
    for (const core::Transfer& t : entry.plan.transfers) {
      if (!t.storage() && t.link == link && t.slot >= slot) {
        affected.push_back(id);
        break;
      }
    }
  }
  for (int id : affected) {
    InFlightPlan entry = std::move(b.plans.at(id));
    b.plans.erase(id);
    b.postcard->uncommit_future(entry.plan, slot);
    // Replay the executed prefix (slots < `slot`) to locate the file's
    // volume: what already reached the destination stays delivered, the
    // rest is stranded wherever the plan last put it.
    // Ordered: the walk below re-enqueues one remainder request per node,
    // each drawing a fresh synthetic id, so node order is committed state.
    std::map<int, double> holdings;
    holdings[entry.request.source] = entry.request.size;
    for (const core::Transfer& t : entry.plan.transfers) {
      if (t.storage() || t.slot >= slot) continue;
      holdings[t.from] -= t.volume;
      holdings[t.to] += t.volume;
    }
    double arrived = 0.0;
    if (auto it = holdings.find(entry.request.destination);
        it != holdings.end()) {
      arrived = std::max(0.0, it->second);
      holdings.erase(it);
    }
    if (arrived > 0.0) {
      base::MutexLock lock(stats_mu_);
      b.stats.delivered_volume += arrived;
    }
    for (const auto& [node, volume] : holdings) {
      if (volume <= options_.volume_epsilon) continue;
      requeue_remainder(b, entry.request, node, volume, entry.deadline_slot,
                        slot);
    }
  }
}

void ControllerRuntime::invalidate_flows(Backend& b, int slot, int link) {
  base::MutexLock ledger(ledger_mu_);
  std::vector<int> affected;
  for (const auto& [id, entry] : b.flows) {
    const flow::FlowAssignment& a = entry.assignment;
    if (a.start_slot + a.duration <= slot) continue;  // already done
    for (const auto& [l, rate] : a.link_rates) {
      if (l == link && rate > options_.volume_epsilon) {
        affected.push_back(id);
        break;
      }
    }
  }
  for (int id : affected) {
    InFlightFlow entry = std::move(b.flows.at(id));
    b.flows.erase(id);
    b.flowbase->uncommit_future(entry.assignment, slot);
    const flow::FlowAssignment& a = entry.assignment;
    const int completed = std::clamp(slot - a.start_slot, 0, a.duration);
    const double delivered =
        std::min(entry.request.size, a.rate * completed);
    if (delivered > 0.0) {
      base::MutexLock lock(stats_mu_);
      b.stats.delivered_volume += delivered;
    }
    const double remaining = entry.request.size - delivered;
    if (remaining > options_.volume_epsilon) {
      requeue_remainder(b, entry.request, entry.request.source, remaining,
                        a.start_slot + a.duration, slot);
    }
  }
}

void ControllerRuntime::requeue_remainder(Backend& b,
                                          const net::FileRequest& origin,
                                          int node, double volume,
                                          int deadline_slot, int slot) {
  if (node == origin.destination) {
    base::MutexLock lock(stats_mu_);
    b.stats.delivered_volume += volume;
    return;
  }
  const int slack = deadline_slot - slot;
  if (slack < 1) {
    // No slot left before the deadline: the file fails loudly, never
    // silently — the volume lands in the failure counters.
    base::MutexLock lock(stats_mu_);
    ++b.stats.failed_files;
    b.stats.failed_volume += volume;
    return;
  }
  net::FileRequest request;
  request.id = next_synthetic_id_++;
  request.source = node;
  request.destination = origin.destination;
  request.size = volume;
  request.max_transfer_slots = slack;
  request.release_slot = slot;
  b.replan_batch.push_back(request);
  base::MutexLock lock(stats_mu_);
  ++b.stats.replans;
  b.stats.replanned_volume += volume;
}

void ControllerRuntime::tick() {
  const int slot = next_slot_;
  // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
  const auto start = std::chrono::steady_clock::now();
  retire_completed(slot);
  queue_.push(slot, SlotTick{slot});

  std::vector<net::FileRequest> arrivals;
  std::vector<net::FileRequest> late;  // arrived after this slot's solve
  bool solved = false;
  long link_events = 0;
  long solver_stalls = 0;
  long solver_faults = 0;
  Event event;
  while (queue_.pop_due(slot, &event)) {
    std::visit(
        overloaded{
            [&](const LinkDown& e) {
              ++link_events;
              on_link_down(slot, e.link);
            },
            [&](const LinkUp& e) {
              ++link_events;
              link_down_[static_cast<std::size_t>(e.link)] = false;
              apply_capacity(e.link,
                             base_capacity_[static_cast<std::size_t>(e.link)]);
            },
            [&](const CapacityChange& e) {
              ++link_events;
              base_capacity_[static_cast<std::size_t>(e.link)] = e.capacity;
              if (!link_down_[static_cast<std::size_t>(e.link)]) {
                apply_capacity(e.link, e.capacity);
              }
            },
            [&](const FileArrival& e) {
              // A producer can race an arrival into the queue after this
              // slot's SlotTick has already been popped and solved; such
              // stragglers join the next slot's batch instead of vanishing.
              (solved ? late : arrivals).push_back(e.file);
            },
            [&](const SolverStall& e) {
              ++solver_stalls;
              for (std::size_t i = 0; i < backends_.size(); ++i) {
                if (e.backend < 0 || e.backend == static_cast<int>(i)) {
                  backends_[i]->injected_stall = std::max(0L, e.pivot_budget);
                }
              }
            },
            [&](const SolverFault& e) {
              ++solver_faults;
              for (std::size_t i = 0; i < backends_.size(); ++i) {
                if (e.backend < 0 || e.backend == static_cast<int>(i)) {
                  backends_[i]->injected_fault =
                      std::max(backends_[i]->injected_fault, e.disable_rungs);
                }
              }
            },
            [&](const SlotTick&) {
              if (!solved) {
                solve_slot(slot, arrivals);
                solved = true;
              }
            },
        },
        event.payload);
  }
  for (const net::FileRequest& f : late) queue_.push(slot + 1, FileArrival{f});

  next_slot_ = slot + 1;
  ingress_.set_now(next_slot_);
  base::MutexLock lock(stats_mu_);
  ++slots_processed_;
  link_events_ += link_events;
  solver_stalls_ += solver_stalls;
  solver_faults_ += solver_faults;
  slot_latency_.add(elapsed_seconds(start));
}

void ControllerRuntime::solve_slot(int slot,
                                   const std::vector<net::FileRequest>& arrivals) {
  struct TaskResult {
    sim::ScheduleOutcome outcome;
    std::vector<core::FilePlan> plans;
    std::vector<net::FileRequest> files;  // the group actually solved
    core::MasterWarmCache cache;  // split mode: the group's cache, updated
    double seconds = 0.0;
  };
  struct BackendWork {
    Backend* backend = nullptr;
    std::vector<net::FileRequest> batch;
    int groups = 1;          // 1 = live sequential solve
    std::size_t first = 0;   // index of the first TaskResult
    double cost_before = 0.0;  // cost per interval entering the slot
    bool degraded = false;     // any rung below full LP fired this slot
  };

  std::vector<BackendWork> work;
  work.reserve(backends_.size());
  std::size_t num_tasks = 0;
  for (auto& bp : backends_) {
    BackendWork w;
    w.backend = bp.get();
    w.batch = arrivals;
    w.batch.insert(w.batch.end(), bp->replan_batch.begin(),
                   bp->replan_batch.end());
    bp->replan_batch.clear();
    w.batch.insert(w.batch.end(), bp->carry_batch.begin(),
                   bp->carry_batch.end());
    bp->prior_carry_ids.clear();
    for (const net::FileRequest& f : bp->carry_batch) {
      bp->prior_carry_ids.insert(f.id);
    }
    bp->carry_batch.clear();
    // Arm the slot watchdog BEFORE any snapshot clone is taken below:
    // clones copy the controls, so split-batch groups and conflict
    // re-solves run budgeted too. Called every slot (even when inactive)
    // so one-shot chaos overrides from the previous slot are cleared.
    sim::SolveControls controls;
    if (options_.slot_pivot_budget > 0) {
      controls.max_pivots = options_.slot_pivot_budget;
    }
    if (options_.slot_deadline_seconds > 0.0) {
      controls.deadline_seconds = options_.slot_deadline_seconds;
    }
    if (bp->injected_stall >= 0) controls.max_pivots = bp->injected_stall;
    if (bp->injected_fault > 0) controls.disable_rungs = bp->injected_fault;
    bp->injected_stall = -1;
    bp->injected_fault = 0;
    bp->policy->set_solve_controls(controls);
    w.cost_before = bp->policy->cost_per_interval();
    w.groups = 1;
    if (bp->postcard != nullptr && options_.parallel_groups > 1 &&
        w.batch.size() >= 2) {
      // Cap the split so every stripe keeps at least min_group_files files
      // (clone overhead only amortizes over a meaty stripe).
      const int by_floor = static_cast<int>(
          w.batch.size() / static_cast<std::size_t>(options_.min_group_files));
      w.groups = std::max(
          1, std::min({options_.parallel_groups,
                       static_cast<int>(w.batch.size()), by_floor}));
    }
    w.first = num_tasks;
    num_tasks += static_cast<std::size_t>(w.groups);
    work.push_back(std::move(w));
  }

  std::vector<TaskResult> results(num_tasks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(num_tasks);
  for (BackendWork& w : work) {
    if (w.groups == 1) {
      Backend* b = w.backend;
      TaskResult* out = &results[w.first];
      const std::vector<net::FileRequest>* batch = &w.batch;
      tasks.push_back([b, out, batch, slot] {
        // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
        const auto t0 = std::chrono::steady_clock::now();
        out->outcome = b->policy->schedule(slot, *batch);
        if (b->postcard != nullptr) out->plans = b->postcard->last_plans();
        out->files = *batch;
        out->seconds = elapsed_seconds(t0);
      });
      continue;
    }
    // Split-batch mode: each group solves against a snapshot clone; the
    // single writer validates and commits after the barrier. Each group
    // keeps its own warm cache across slots (group g always sees the batch
    // stripe g, so its masters drift slowly): the driver moves it into the
    // transient clone here and back out of the result after the barrier.
    if (w.backend->group_caches.size() < static_cast<std::size_t>(w.groups)) {
      w.backend->group_caches.resize(static_cast<std::size_t>(w.groups));
    }
    for (int g = 0; g < w.groups; ++g) {
      std::vector<net::FileRequest> group;
      for (std::size_t i = static_cast<std::size_t>(g); i < w.batch.size();
           i += static_cast<std::size_t>(w.groups)) {
        group.push_back(w.batch[i]);
      }
      core::PostcardController clone = w.backend->postcard->snapshot_clone();
      clone.set_warm_cache(std::move(
          w.backend->group_caches[static_cast<std::size_t>(g)]));
      TaskResult* out = &results[w.first + static_cast<std::size_t>(g)];
      out->files = std::move(group);
      tasks.push_back([clone = std::move(clone), out, slot]() mutable {
        // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
        const auto t0 = std::chrono::steady_clock::now();
        out->outcome = clone.schedule(slot, out->files);
        out->plans = clone.last_plans();
        out->cache = clone.release_warm_cache();
        out->seconds = elapsed_seconds(t0);
      });
    }
  }

  pool_.run_all(std::move(tasks));

  // Did this outcome reach any rung below the full LP optimum?
  auto outcome_degraded = [](const sim::ScheduleOutcome& o) {
    return o.rung_truncated + o.rung_dcroute + o.rung_greedy > 0 ||
           !o.deferred_ids.empty();
  };

  // Single-writer phase: merge results in deterministic (backend, group)
  // order; grouped plans are validated against live residual capacity and
  // re-solved on the live controller when they no longer fit.
  for (BackendWork& w : work) {
    Backend& b = *w.backend;
    if (w.groups == 1) {
      TaskResult& r = results[w.first];
      record_outcome(b, slot, r.files, r.outcome);
      w.degraded = outcome_degraded(r.outcome);
      if (b.postcard != nullptr) track_plans(b, slot, r.plans, r.files);
      if (b.flowbase != nullptr) {
        base::MutexLock ledger(ledger_mu_);
        for (const flow::FlowAssignment& a : b.flowbase->last_assignments()) {
          auto it = std::find_if(r.files.begin(), r.files.end(),
                                 [&](const net::FileRequest& f) {
                                   return f.id == a.file_id;
                                 });
          if (it != r.files.end()) b.flows[a.file_id] = {*it, a};
        }
      }
      base::MutexLock lock(stats_mu_);
      add_solve_latency(r.outcome, r.seconds);
      const double cost_after = b.policy->cost_per_interval();
      if (w.degraded) {
        ++b.stats.degraded_slots;
        b.stats.degraded_cost_delta += cost_after - w.cost_before;
      }
      b.stats.cost_series.push_back(cost_after);
      b.stats.charge_reduce_violations =
          b.policy->charge_state().recorder().reduce_violations();
      continue;
    }
    for (int g = 0; g < w.groups; ++g) {
      TaskResult& r = results[w.first + static_cast<std::size_t>(g)];
      bool fits = true;
      std::map<std::pair<int, int>, double> delta;  // (link, slot) -> GB
      const charging::ChargeState& charge = b.postcard->charge_state();
      for (const core::FilePlan& plan : r.plans) {
        for (const core::Transfer& t : plan.transfers) {
          if (t.storage()) continue;
          double& d = delta[{t.link, t.slot}];
          const double capacity = b.postcard->topology().link(t.link).capacity;
          if (charge.committed(t.link, t.slot) + d + t.volume >
              capacity + options_.capacity_tolerance) {
            fits = false;
            break;
          }
          d += t.volume;
        }
        if (!fits) break;
      }
      // The group's cache is updated whether its plans were committed or
      // conflicted away — it reflects the master the group solved, which
      // is what stripe g resembles again next slot.
      b.group_caches[static_cast<std::size_t>(g)] = std::move(r.cache);
      if (fits) {
        b.postcard->commit_plans(r.plans);
        record_outcome(b, slot, r.files, r.outcome);
        w.degraded = w.degraded || outcome_degraded(r.outcome);
        track_plans(b, slot, r.plans, r.files);
        if (options_.audit.active()) {
          audit_group_commit(b, slot, r.plans, r.files);
        }
      } else {
        // Conflict: the groups' snapshot solves oversubscribed a link.
        // The writer re-solves this group exactly, against live state
        // (warm-started from the live controller's own cache).
        // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
        const auto t0 = std::chrono::steady_clock::now();
        const sim::ScheduleOutcome live = b.postcard->schedule(slot, r.files);
        const double live_seconds = elapsed_seconds(t0);
        record_outcome(b, slot, r.files, live);
        w.degraded = w.degraded || outcome_degraded(live);
        track_plans(b, slot, b.postcard->last_plans(), r.files);
        base::MutexLock lock(stats_mu_);
        ++b.stats.conflict_resolves;
        add_solve_latency(live, live_seconds);
      }
      base::MutexLock lock(stats_mu_);
      add_solve_latency(r.outcome, r.seconds);
    }
    base::MutexLock lock(stats_mu_);
    const double cost_after = b.policy->cost_per_interval();
    if (w.degraded) {
      ++b.stats.degraded_slots;
      b.stats.degraded_cost_delta += cost_after - w.cost_before;
    }
    b.stats.cost_series.push_back(cost_after);
    b.stats.charge_reduce_violations =
        b.policy->charge_state().recorder().reduce_violations();
  }
}

void ControllerRuntime::add_solve_latency(const sim::ScheduleOutcome& o,
                                          double seconds) {
  solve_latency_.add(seconds);
  if (o.warm_accepts + o.cold_starts == 0) return;  // no LP this solve
  const bool warm = o.warm_accepts > 0 && o.cold_starts == 0;
  (warm ? solve_latency_warm_ : solve_latency_cold_).add(seconds);
}

void ControllerRuntime::audit_group_commit(
    Backend& b, int slot, const std::vector<core::FilePlan>& plans,
    const std::vector<net::FileRequest>& files) {
  // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
  const auto t0 = std::chrono::steady_clock::now();
  audit::AuditOptions opts;
  opts.tolerance = options_.audit.tolerance;
  opts.check_charge_consistency = options_.audit.check_charge_consistency;

  std::vector<audit::PlannedFile> planned;
  planned.reserve(plans.size());
  for (const core::FilePlan& plan : plans) {
    const auto it = std::find_if(files.begin(), files.end(),
                                 [&](const net::FileRequest& f) {
                                   return f.id == plan.file_id;
                                 });
    if (it == files.end()) continue;
    planned.push_back({*it, &plan});
  }
  audit::AuditReport report = audit::audit_slot_plans(
      slot, planned, b.postcard->topology(), b.postcard->charge_state(), opts);
  report.merge(audit::audit_charge_state(b.postcard->charge_state(),
                                         b.postcard->topology(), opts));
  const double seconds = elapsed_seconds(t0);
  {
    base::MutexLock lock(stats_mu_);
    ++b.stats.audit_checks;
    b.stats.audit_violations += static_cast<long>(report.violations.size());
    b.stats.audit_seconds += seconds;
    for (const audit::Violation& v : report.violations) {
      if (static_cast<int>(b.stats.audit_reports.size()) >=
          options_.audit.max_reports) {
        break;
      }
      b.stats.audit_reports.push_back(v.format());
    }
  }
  if (report.ok()) return;
  if (options_.audit.mode == sim::AuditControls::Mode::kFailFast) {
    throw std::logic_error(b.stats.name + " writer commit at slot " +
                           std::to_string(slot) + " " + report.summary());
  }
  std::fprintf(stderr, "[audit] %s writer commit at slot %d %s\n",
               b.stats.name.c_str(), slot, report.summary().c_str());
}

void ControllerRuntime::record_outcome(
    Backend& b, int slot, const std::vector<net::FileRequest>& batch,
    const sim::ScheduleOutcome& outcome) {
  std::unordered_map<int, const net::FileRequest*> by_id;
  for (const net::FileRequest& f : batch) by_id[f.id] = &f;
  auto size_of = [&](int id) {
    const auto it = by_id.find(id);
    return it != by_id.end() ? it->second->size : 0.0;
  };
  // Store-in-place carryover (outside the stats lock: carry_batch is only
  // touched by the single writer). A deferred file was neither accepted nor
  // rejected; it re-enters the next slot's batch under the same id with one
  // slot less deadline slack — or fails loudly when no slack remains.
  long carried = 0, carry_failed = 0, entered = 0;
  double carried_volume = 0.0, carry_failed_volume = 0.0;
  double entered_volume = 0.0;
  for (int id : outcome.deferred_ids) {
    const auto it = by_id.find(id);
    if (it == by_id.end()) continue;
    const net::FileRequest& f = *it->second;
    if (f.max_transfer_slots <= 1) {
      ++carry_failed;
      carry_failed_volume += f.size;
      continue;
    }
    net::FileRequest carry = f;
    carry.release_slot = slot + 1;
    carry.max_transfer_slots -= 1;
    b.carry_batch.push_back(carry);
    ++carried;
    carried_volume += f.size;
    // First hop vs. repeat hop: carried_volume above grows with the chain
    // length (one entry per slot the file sat out), the entered pair below
    // counts each file once however long its chain runs.
    if (b.prior_carry_ids.find(id) == b.prior_carry_ids.end()) {
      ++entered;
      entered_volume += f.size;
    }
  }
  base::MutexLock lock(stats_mu_);
  b.stats.lp_iterations += outcome.lp_iterations;
  b.stats.lp_solves += outcome.lp_solves;
  b.stats.warm_accepts += outcome.warm_accepts;
  b.stats.cold_starts += outcome.cold_starts;
  b.stats.pricing_seconds += outcome.pricing_seconds;
  b.stats.master_seconds += outcome.master_seconds;
  b.stats.resumed_solves += outcome.resumed_solves;
  b.stats.dual_warm_attempts += outcome.dual_warm_attempts;
  b.stats.dual_seed_columns += outcome.dual_seed_columns;
  b.stats.rung_full += outcome.rung_full;
  b.stats.rung_truncated += outcome.rung_truncated;
  b.stats.rung_greedy += outcome.rung_greedy;
  b.stats.rung_dcroute += outcome.rung_dcroute;
  b.stats.solver_failures += outcome.solver_failures;
  if (!outcome.solver_status.empty()) {
    b.stats.last_solver_status = outcome.solver_status;
  }
  b.stats.gave_up_files += outcome.gave_up_files;
  b.stats.gave_up_volume += outcome.gave_up_volume;
  b.stats.audit_checks += outcome.audit_checks;
  b.stats.audit_violations += outcome.audit_violations;
  b.stats.audit_seconds += outcome.audit_seconds;
  for (const std::string& line : outcome.audit_reports) {
    if (static_cast<int>(b.stats.audit_reports.size()) >=
        options_.audit.max_reports) {
      break;
    }
    b.stats.audit_reports.push_back(line);
  }
  b.stats.carryover_files += carried;
  b.stats.carryover_volume += carried_volume;
  b.stats.carryover_entered_files += entered;
  b.stats.carryover_entered_volume += entered_volume;
  b.stats.failed_files += carry_failed;
  b.stats.failed_volume += carry_failed_volume;
  for (int id : outcome.accepted_ids) {
    if (is_synthetic(id)) continue;  // fragment volume counted at admission
    ++b.stats.accepted_files;
    b.stats.accepted_volume += size_of(id);
  }
  for (int id : outcome.rejected_ids) {
    if (is_synthetic(id)) {
      // A replan fragment the solver could not place: the original file
      // cannot finish — loud failure, not a silent drop.
      ++b.stats.failed_files;
      b.stats.failed_volume += size_of(id);
    } else {
      ++b.stats.rejected_files;
      b.stats.rejected_volume += size_of(id);
    }
  }
}

void ControllerRuntime::track_plans(Backend& b, int slot,
                                    const std::vector<core::FilePlan>& plans,
                                    const std::vector<net::FileRequest>& batch) {
  base::MutexLock ledger(ledger_mu_);
  for (const core::FilePlan& plan : plans) {
    const auto it = std::find_if(batch.begin(), batch.end(),
                                 [&](const net::FileRequest& f) {
                                   return f.id == plan.file_id;
                                 });
    if (it == batch.end()) continue;
    InFlightPlan entry;
    entry.request = *it;
    entry.deadline_slot = slot + it->max_transfer_slots;
    entry.last_transfer_slot = slot;
    for (const core::Transfer& t : plan.transfers) {
      entry.last_transfer_slot = std::max(entry.last_transfer_slot, t.slot);
    }
    entry.plan = plan;
    b.plans[plan.file_id] = std::move(entry);
  }
}

void ControllerRuntime::retire_completed(int before_slot) {
  base::MutexLock ledger(ledger_mu_);
  for (auto& bp : backends_) {
    Backend& b = *bp;
    for (auto it = b.plans.begin(); it != b.plans.end();) {
      if (it->second.last_transfer_slot < before_slot) {
        base::MutexLock lock(stats_mu_);
        if (!is_synthetic(it->first)) ++b.stats.delivered_files;
        b.stats.delivered_volume += it->second.request.size;
        it = b.plans.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = b.flows.begin(); it != b.flows.end();) {
      const flow::FlowAssignment& a = it->second.assignment;
      if (a.start_slot + a.duration <= before_slot) {
        base::MutexLock lock(stats_mu_);
        if (!is_synthetic(it->first)) ++b.stats.delivered_files;
        b.stats.delivered_volume += it->second.request.size;
        it = b.flows.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void ControllerRuntime::flush_in_flight() {
  retire_completed(std::numeric_limits<int>::max());
  // Carryover files deferred at the final slot never got re-solved; they
  // fail loudly rather than vanish from the accounting identity.
  for (auto& bp : backends_) {
    if (bp->carry_batch.empty()) continue;
    base::MutexLock lock(stats_mu_);
    for (const net::FileRequest& f : bp->carry_batch) {
      ++bp->stats.failed_files;
      bp->stats.failed_volume += f.size;
    }
    bp->carry_batch.clear();
  }
}

void ControllerRuntime::run(int num_slots) {
  while (next_slot_ < num_slots) tick();
  flush_in_flight();
}

RuntimeStats ControllerRuntime::replay(const sim::WorkloadGenerator& workload) {
  for (int slot = 0; slot < workload.num_slots(); ++slot) {
    for (const net::FileRequest& f : workload.batch(slot)) ingress_.submit(f);
    tick();
  }
  flush_in_flight();
  return stats();
}

bool ControllerRuntime::query_plan(int backend, int file_id,
                                   core::FilePlan* plan,
                                   net::FileRequest* request) const {
  if (backend < 0 || backend >= num_backends()) return false;
  const Backend& b = *backends_[static_cast<std::size_t>(backend)];
  base::MutexLock ledger(ledger_mu_);
  const auto it = b.plans.find(file_id);
  if (it == b.plans.end()) return false;
  if (plan != nullptr) *plan = it->second.plan;
  if (request != nullptr) *request = it->second.request;
  return true;
}

RuntimeSnapshot ControllerRuntime::capture_snapshot() const {
  RuntimeSnapshot snap;
  snap.num_datacenters = live_topology_.num_datacenters();
  snap.links = live_topology_.links();
  snap.base_capacity = base_capacity_;
  snap.link_down.assign(link_down_.begin(), link_down_.end());
  snap.next_slot = next_slot_;
  snap.next_synthetic_id = next_synthetic_id_;
  snap.submitted = ingress_.submitted();
  snap.admitted = ingress_.admitted();
  snap.ingress_rejected = ingress_.rejected();
  snap.ingress_rejected_volume = ingress_.rejected_volume();
  snap.admitted_ids = ingress_.admitted_ids();
  snap.pending_events = queue_.pending(&snap.event_seq_watermark);
  {
    base::MutexLock lock(stats_mu_);
    snap.slots_processed = slots_processed_;
    snap.link_events = link_events_;
    snap.solver_stalls = solver_stalls_;
    snap.solver_faults = solver_faults_;
    snap.slot_latency = slot_latency_;
    snap.solve_latency = solve_latency_;
    snap.solve_latency_warm = solve_latency_warm_;
    snap.solve_latency_cold = solve_latency_cold_;
  }
  snap.backends.reserve(backends_.size());
  for (const auto& bp : backends_) {
    const Backend& b = *bp;
    BackendSnapshot bs;
    if (b.postcard != nullptr) {
      bs.kind = BackendSnapshot::Kind::kPostcard;
    } else if (b.flowbase != nullptr) {
      bs.kind = BackendSnapshot::Kind::kFlow;
    } else {
      // The generic SchedulingPolicy interface has no charge-state restore
      // hook, so a snapshot of it could never resume faithfully. Refusing
      // here is the loud failure; a silent partial snapshot would corrupt
      // the restored run.
      throw std::logic_error(
          "capture_snapshot: generic backends cannot be snapshotted");
    }
    const charging::ChargeState& charge = b.policy->charge_state();
    const charging::PercentileRecorder& rec = charge.recorder();
    bs.series.reserve(static_cast<std::size_t>(rec.num_links()));
    for (int l = 0; l < rec.num_links(); ++l) {
      bs.series.push_back(rec.slot_series(l));
    }
    bs.series_slots = rec.num_slots();
    bs.reduce_violations = rec.reduce_violations();
    bs.charged = charge.charged_all();
    if (b.postcard != nullptr) {
      bs.warm_cache = b.postcard->warm_cache();
      bs.group_caches = b.group_caches;
    }
    {
      base::MutexLock ledger(ledger_mu_);
      bs.plans.reserve(b.plans.size());
      for (const auto& [id, entry] : b.plans) {
        bs.plans.push_back({entry.request, entry.deadline_slot,
                            entry.last_transfer_slot, entry.plan});
      }
      bs.flows.reserve(b.flows.size());
      for (const auto& [id, entry] : b.flows) {
        bs.flows.push_back({entry.request, entry.assignment});
      }
    }
    // The ledgers are std::map, so both vectors are already ascending by
    // request id and identical state serializes to identical bytes (the
    // ledger walks in invalidate_* and retire_completed lean on the same
    // ordering; tests/runtime/test_replan_order.cc pins it).
    bs.replan_batch = b.replan_batch;
    bs.carry_batch = b.carry_batch;
    bs.injected_stall = b.injected_stall;
    bs.injected_fault = b.injected_fault;
    {
      base::MutexLock lock(stats_mu_);
      bs.stats = b.stats;
    }
    bs.name = bs.stats.name;
    snap.backends.push_back(std::move(bs));
  }
  return snap;
}

void ControllerRuntime::restore_snapshot(const RuntimeSnapshot& snap) {
  if (next_slot_ != 0) {
    throw std::logic_error("restore_snapshot: runtime has already ticked");
  }
  // --- Validate everything before mutating anything (all-or-nothing). ---
  if (snap.num_datacenters != live_topology_.num_datacenters() ||
      static_cast<int>(snap.links.size()) != live_topology_.num_links() ||
      snap.base_capacity.size() != snap.links.size() ||
      snap.link_down.size() != snap.links.size()) {
    throw std::invalid_argument("restore_snapshot: topology shape mismatch");
  }
  for (std::size_t l = 0; l < snap.links.size(); ++l) {
    const net::Link& have = live_topology_.link(static_cast<int>(l));
    const net::Link& want = snap.links[l];
    if (have.from != want.from || have.to != want.to ||
        have.unit_cost != want.unit_cost) {
      throw std::invalid_argument(
          "restore_snapshot: link structure mismatch at index " +
          std::to_string(l));
    }
  }
  if (snap.backends.size() != backends_.size()) {
    throw std::invalid_argument("restore_snapshot: backend count mismatch");
  }
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const Backend& b = *backends_[i];
    const BackendSnapshot& bs = snap.backends[i];
    const BackendSnapshot::Kind kind =
        b.postcard != nullptr  ? BackendSnapshot::Kind::kPostcard
        : b.flowbase != nullptr ? BackendSnapshot::Kind::kFlow
                                : BackendSnapshot::Kind::kOther;
    if (kind != bs.kind || kind == BackendSnapshot::Kind::kOther) {
      throw std::invalid_argument("restore_snapshot: backend " +
                                  std::to_string(i) + " kind mismatch");
    }
    if (b.policy->name() != bs.name) {
      throw std::invalid_argument("restore_snapshot: backend " +
                                  std::to_string(i) + " is '" +
                                  b.policy->name() + "', snapshot holds '" +
                                  bs.name + "'");
    }
    if (static_cast<int>(bs.series.size()) != live_topology_.num_links() ||
        bs.charged.size() != bs.series.size()) {
      throw std::invalid_argument("restore_snapshot: charge ledger of '" +
                                  bs.name + "' has wrong link count");
    }
  }
  // --- Apply. ---
  next_slot_ = snap.next_slot;
  next_synthetic_id_ = snap.next_synthetic_id;
  base_capacity_ = snap.base_capacity;
  link_down_.assign(snap.link_down.begin(), snap.link_down.end());
  for (std::size_t l = 0; l < snap.links.size(); ++l) {
    apply_capacity(static_cast<int>(l), snap.links[l].capacity);
  }
  ingress_.restore_counters(snap.submitted, snap.admitted,
                            snap.ingress_rejected,
                            snap.ingress_rejected_volume);
  ingress_.restore_admitted_ids(snap.admitted_ids);
  ingress_.set_now(next_slot_);
  // pending() captured drain order; re-pushing in that order reassigns
  // fresh sequence numbers with the same relative ordering.
  for (const Event& e : snap.pending_events) queue_.push(e.slot, e.payload);
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    Backend& b = *backends_[i];
    const BackendSnapshot& bs = snap.backends[i];
    charging::ChargeState charge = charging::ChargeState::restore(
        charging::PercentileRecorder::from_series(
            bs.series, bs.series_slots, bs.reduce_violations),
        bs.charged);
    if (b.postcard != nullptr) {
      b.postcard->restore_charge_state(std::move(charge));
      b.postcard->set_warm_cache(bs.warm_cache);
      b.group_caches = bs.group_caches;
    } else {
      b.flowbase->restore_charge_state(std::move(charge));
    }
    {
      base::MutexLock ledger(ledger_mu_);
      b.plans.clear();
      for (const PlanLedgerEntry& entry : bs.plans) {
        b.plans[entry.plan.file_id] = InFlightPlan{
            entry.request, entry.deadline_slot, entry.last_transfer_slot,
            entry.plan};
      }
      b.flows.clear();
      for (const FlowLedgerEntry& entry : bs.flows) {
        b.flows[entry.assignment.file_id] =
            InFlightFlow{entry.request, entry.assignment};
      }
    }
    b.replan_batch = bs.replan_batch;
    b.carry_batch = bs.carry_batch;
    b.injected_stall = bs.injected_stall;
    b.injected_fault = bs.injected_fault;
    base::MutexLock lock(stats_mu_);
    b.stats = bs.stats;
  }
  base::MutexLock lock(stats_mu_);
  slots_processed_ = snap.slots_processed;
  link_events_ = snap.link_events;
  solver_stalls_ = snap.solver_stalls;
  solver_faults_ = snap.solver_faults;
  slot_latency_ = snap.slot_latency;
  solve_latency_ = snap.solve_latency;
  solve_latency_warm_ = snap.solve_latency_warm;
  solve_latency_cold_ = snap.solve_latency_cold;
}

RuntimeStats ControllerRuntime::stats() const {
  RuntimeStats s;
  s.queue_depth = queue_.depth();
  s.submitted = ingress_.submitted();
  s.admitted = ingress_.admitted();
  s.ingress_rejected = ingress_.rejected();
  s.ingress_rejected_volume = ingress_.rejected_volume();
  base::MutexLock lock(stats_mu_);
  s.slots_processed = slots_processed_;
  s.link_events = link_events_;
  s.solver_stalls = solver_stalls_;
  s.solver_faults = solver_faults_;
  s.slot_latency = slot_latency_;
  s.solve_latency = solve_latency_;
  s.solve_latency_warm = solve_latency_warm_;
  s.solve_latency_cold = solve_latency_cold_;
  s.backends.reserve(backends_.size());
  for (const auto& b : backends_) s.backends.push_back(b->stats);
  return s;
}

}  // namespace postcard::runtime
