#include "runtime/event.h"

namespace postcard::runtime {

int event_phase(const EventPayload& payload) {
  if (std::holds_alternative<FileArrival>(payload)) return 1;
  if (std::holds_alternative<SlotTick>(payload)) return 2;
  return 0;  // LinkDown / LinkUp / CapacityChange / SolverStall / SolverFault
}

void EventQueue::set_push_tap(PushTap tap) {
  base::MutexLock lock(mu_);
  tap_ = std::move(tap);
}

std::uint64_t EventQueue::push(int slot, EventPayload payload) {
  base::MutexLock lock(mu_);
  const std::uint64_t seq = next_seq_++;
  const int phase = event_phase(payload);
  if (tap_) {
    // The tap sees the payload before the heap consumes it; holding mu_
    // keeps the tap's observation order identical to the seq order.
    heap_.push(Entry{slot, phase, seq, payload});
    tap_(Event{slot, seq, std::move(payload)});
  } else {
    heap_.push(Entry{slot, phase, seq, std::move(payload)});
  }
  return seq;
}

bool EventQueue::pop_due(int slot, Event* out) {
  base::MutexLock lock(mu_);
  if (heap_.empty() || heap_.top().slot > slot) return false;
  const Entry& top = heap_.top();
  out->slot = top.slot;
  out->seq = top.seq;
  out->payload = top.payload;
  heap_.pop();
  return true;
}

int EventQueue::next_slot() const {
  base::MutexLock lock(mu_);
  return heap_.empty() ? -1 : heap_.top().slot;
}

std::size_t EventQueue::depth() const {
  base::MutexLock lock(mu_);
  return heap_.size();
}

std::uint64_t EventQueue::pushed_total() const {
  base::MutexLock lock(mu_);
  return next_seq_;
}

std::vector<Event> EventQueue::pending(std::uint64_t* next_seq_out) const {
  base::MutexLock lock(mu_);
  if (next_seq_out != nullptr) *next_seq_out = next_seq_;
  std::vector<Event> events;
  events.reserve(heap_.size());
  // priority_queue hides its container; drain a copy to read it in order.
  auto copy = heap_;
  while (!copy.empty()) {
    const Entry& top = copy.top();
    events.push_back(Event{top.slot, top.seq, top.payload});
    copy.pop();
  }
  return events;
}

}  // namespace postcard::runtime
