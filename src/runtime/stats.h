// Runtime observability: latency histograms and the RuntimeStats snapshot.
//
// RuntimeStats is the seam later PRs hook dashboards and regression gates
// into; everything the engine knows about its own behaviour — queue depth,
// admission decisions, solve latency, replans, failures — is surfaced here
// as plain values so a snapshot is cheap to copy out under the stats lock.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace postcard::runtime {

/// Log-scaled latency histogram: bucket b covers [2^b, 2^(b+1)) microseconds,
/// so the range spans 1 us .. ~134 s. Quantiles report the upper edge of the
/// bucket containing the requested rank (a conservative estimate).
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 27;

  void add(double seconds);

  std::int64_t count() const { return count_; }
  double max_seconds() const { return max_seconds_; }
  /// Exact mean of the recorded samples (tracked outside the buckets, so it
  /// carries no bucketing error), 0 when empty.
  double mean_seconds() const {
    return count_ > 0 ? total_seconds_ / static_cast<double>(count_) : 0.0;
  }
  /// q in [0, 1]; e.g. quantile(0.99) is the p99 latency in seconds.
  double quantile(double q) const;

  // --- Snapshot capture/restore (src/server serializes these verbatim) ---
  const std::array<std::int64_t, kBuckets>& buckets() const { return buckets_; }
  double total_seconds() const { return total_seconds_; }
  static LatencyHistogram restore(const std::array<std::int64_t, kBuckets>& buckets,
                                  std::int64_t count, double total_seconds,
                                  double max_seconds) {
    LatencyHistogram h;
    h.buckets_ = buckets;
    h.count_ = count;
    h.total_seconds_ = total_seconds;
    h.max_seconds_ = max_seconds;
    return h;
  }

 private:
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  double total_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

/// Per-backend (per registered policy) counters.
struct BackendStats {
  std::string name;
  long accepted_files = 0;
  double accepted_volume = 0.0;  // GB admitted by the solver
  long rejected_files = 0;
  double rejected_volume = 0.0;  // GB the solver could not schedule
  long delivered_files = 0;      // plans that completed before their deadline
  double delivered_volume = 0.0;
  long replans = 0;              // re-solves triggered by LinkDown events
  double replanned_volume = 0.0;
  long failed_files = 0;         // accepted, then unsalvageable after failure
  double failed_volume = 0.0;
  long conflict_resolves = 0;    // parallel group plans redone by the writer
  long lp_iterations = 0;
  int lp_solves = 0;
  // Cross-slot warm starts: master solves whose seeded basis was verified
  // and accepted vs. solves run cold (nothing seeded, or rejected).
  long warm_accepts = 0;
  long cold_starts = 0;
  // Solver hot-path split (column-generation backends only): wall time in
  // the pricing DP vs. the restricted-master solves, master solves resumed
  // in place on the incumbent factorization, and dual-warm-start outcomes
  // (slots seeded from cached duals / columns those seeds contributed).
  double pricing_seconds = 0.0;
  double master_seconds = 0.0;
  long resumed_solves = 0;
  long dual_warm_attempts = 0;
  long dual_seed_columns = 0;
  // Percentile ledger integrity: uncommits that asked for more volume than
  // the slot held (beyond rounding noise). Always 0 in a correct engine;
  // nonzero pinpoints a double-uncommit or a commit/uncommit mismatch.
  long charge_reduce_violations = 0;
  // ---- Degradation ladder (slot watchdog; see DESIGN.md §9). Per-rung
  // slot counts: full LP optimum committed / budget-truncated incumbent
  // committed / files placed by the greedy fallback. All zero unless a
  // budget or injected fault is active.
  long rung_full = 0;
  long rung_truncated = 0;
  long rung_greedy = 0;
  // Files placed by the DCRoute single-path rung (between truncated CG and
  // the greedy chunker; zero unless PostcardOptions::use_dcroute_rung).
  long rung_dcroute = 0;
  // Store-in-place carryover (the last rung): deferred files re-enqueued
  // into the next slot's batch with one slot less deadline slack. Files
  // deferred with no slack left land in failed_files/failed_volume.
  long carryover_files = 0;
  double carryover_volume = 0.0;
  // Distinct files that entered a carry chain, counted on the FIRST
  // deferral only. carryover_files/volume count hops — a 3-slot chain is
  // three hops but one file — so the pair above inflates with chain
  // length while this pair matches the files the accounting identity
  // sees. (carryover_files - carryover_entered_files) is the number of
  // repeat hops.
  long carryover_entered_files = 0;
  double carryover_entered_volume = 0.0;
  // Slots where any rung below full LP fired, and the cost-per-interval
  // increase accumulated across exactly those slots (ablation handle:
  // what the degradation cost relative to the charge level it started at).
  long degraded_slots = 0;
  double degraded_cost_delta = 0.0;
  // Solver-failure visibility: slot solves that ended non-optimal, with
  // the most recent status string (lp::to_string / "fault_injected").
  long solver_failures = 0;
  std::string last_solver_status;
  // Greedy chunk-budget exhaustion (max_chunks_per_file ran out).
  long gave_up_files = 0;
  double gave_up_volume = 0.0;
  // ---- Plan audits (src/audit; armed via RuntimeOptions::audit). Whether
  // the backend accepted the audit controls at registration, how many
  // commits were re-verified (policy-side self-audits plus the writer's
  // post-commit audits in split-batch mode), violations found, wall time
  // spent auditing, and the first violation reports (capped by
  // AuditControls::max_reports). In kFailFast mode violations throw before
  // reaching these counters, so a completed run shows zero.
  bool audit_armed = false;
  long audit_checks = 0;
  long audit_violations = 0;
  double audit_seconds = 0.0;
  std::vector<std::string> audit_reports;
  std::vector<double> cost_series;  // cost per interval after each slot
};

/// Network front-end counters (src/server). Zero unless the runtime is
/// driven by a PostcardServer, which folds its per-session accounting into
/// every RuntimeStats snapshot it exports — the QueryStats reply and the
/// `--metrics-dump` text surface both read from here.
struct ServerCounters {
  long sessions_opened = 0;
  long sessions_closed = 0;
  long frames_received = 0;
  long frames_sent = 0;
  long submits = 0;             // SubmitFile + SubmitBatch file entries
  long submit_admitted = 0;     // entries the admission control let through
  long backpressure_replies = 0;  // explicit Backpressure verdicts sent back
  long queries = 0;             // QueryPlan + QueryStats requests served
  long protocol_errors = 0;     // malformed frames; each closes its session
  long snapshots_written = 0;
  long slots_advanced = 0;      // slots ticked by AdvanceSlot commands/timer
  long sessions_reaped = 0;     // idle/stalled sessions closed by the reaper
};

/// Snapshot of the whole engine; see ControllerRuntime::stats().
struct RuntimeStats {
  int slots_processed = 0;
  std::size_t queue_depth = 0;  // events still pending at snapshot time
  // Ingress admission.
  long submitted = 0;
  long admitted = 0;
  long ingress_rejected = 0;
  double ingress_rejected_volume = 0.0;
  // Network dynamics.
  long link_events = 0;
  // Chaos injection: SolverStall / SolverFault events processed.
  long solver_stalls = 0;
  long solver_faults = 0;
  // Latency: whole-slot processing and individual solve tasks. The solve
  // histogram is additionally split by how the slot's first master solve
  // started (warm-accepted vs. cold); solves with no LP at all (empty
  // batches, non-LP policies) appear only in the combined histogram.
  LatencyHistogram slot_latency;
  LatencyHistogram solve_latency;
  LatencyHistogram solve_latency_warm;
  LatencyHistogram solve_latency_cold;
  // Socket front-end accounting; all-zero outside server mode.
  ServerCounters server;
  std::vector<BackendStats> backends;
};

}  // namespace postcard::runtime
