#include "runtime/stats.h"

#include <algorithm>
#include <cmath>

namespace postcard::runtime {

void LatencyHistogram::add(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  const double micros = seconds * 1e6;
  int bucket = 0;
  if (micros >= 1.0) {
    bucket = static_cast<int>(std::floor(std::log2(micros)));
    bucket = std::clamp(bucket, 0, kBuckets - 1);
  }
  ++buckets_[static_cast<std::size_t>(bucket)];
  ++count_;
  total_seconds_ += seconds;
  max_seconds_ = std::max(max_seconds_, seconds);
}

double LatencyHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      const double upper_micros = std::ldexp(1.0, b + 1);  // 2^(b+1) us
      return std::min(upper_micros * 1e-6, max_seconds_);
    }
  }
  return max_seconds_;
}

}  // namespace postcard::runtime
