// The online controller runtime: a slot-clocked, event-driven engine that
// turns the offline batch replay of src/sim into an operational service.
//
// Architecture (see DESIGN.md, "Online controller runtime"):
//
//   producers --> RequestIngress --> EventQueue <-- fail_link()/...
//                                        |
//                                  tick() driver          (single thread)
//                                   |        |
//                            WorkerPool   single writer
//                        (per-policy and  (validates + commits plans,
//                         split-batch     updates in-flight ledger,
//                         LP solves)      triggers LinkDown replans)
//
// Threading & ownership rules:
//   * Any number of threads may call RequestIngress::submit() and the
//     event-injection helpers; they touch only the locked event queue and
//     the ingress's own capacity view.
//   * Exactly one driver thread calls tick()/run()/replay(). It owns the
//     policies, the in-flight ledger and the stats.
//   * Worker tasks touch either a snapshot clone (Postcard split-batch
//     mode) or one backend exclusively (per-policy dispatch); the driver
//     joins all tasks before reading their results, so no result is read
//     concurrently with its write.
//   * stats() may be called from any thread; it copies under the stats
//     lock which the driver takes only while merging, never while solving.
//
// Determinism guarantee: with worker_threads == 0 and parallel_groups == 1
// (or any time no failure events fire and batches arrive in workload
// order), each backend receives exactly the schedule() call sequence that
// sim::run_simulation would issue, so its cost series is bit-for-bit
// identical to the offline replay. With parallel_groups > 1 results are
// still reproducible for a fixed submission order (groups are partitioned
// and committed in deterministic order) but generally differ from the
// joint solve: sub-batches priced against the same snapshot may combine
// suboptimally, and the single writer re-solves any group whose plans no
// longer fit live residual capacity (a "conflict resolve").
#pragma once

#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "core/postcard.h"
#include "flow/baseline.h"
#include "net/topology.h"
#include "runtime/event.h"
#include "runtime/ingress.h"
#include "runtime/snapshot_state.h"
#include "runtime/stats.h"
#include "runtime/worker_pool.h"
#include "sim/policy.h"
#include "sim/workload.h"

namespace postcard::runtime {

struct RuntimeOptions {
  /// 0 = run every solve inline on the driver (deterministic mode).
  int worker_threads = 0;
  /// Split each Postcard backend's slot batch into up to this many groups
  /// solved concurrently against a charge-state snapshot; 1 = the exact
  /// joint solve of the offline controller.
  int parallel_groups = 1;
  /// Split-batch sharding floor: never split below this many files per
  /// group. Each group pays a snapshot clone (charge ledger + sparse graph
  /// arena copy) per slot; at 100+ DC scale that overhead only amortizes
  /// over a meaty stripe. 1 (the default) reproduces the legacy "always
  /// split when parallel_groups allows" behavior exactly.
  int min_group_files = 1;
  /// Replan committed in-flight work invalidated by LinkDown events.
  bool replan_on_link_down = true;
  /// Slack allowed when the writer validates group plans against residual
  /// capacity.
  double capacity_tolerance = 1e-6;
  /// Holdings below this volume are dust and not replanned.
  double volume_epsilon = 1e-9;
  /// Slot watchdog (degradation ladder; see DESIGN.md §9). A positive
  /// pivot budget caps the total simplex pivots each backend may spend per
  /// slot — deterministic, so replays degrade identically. A positive
  /// deadline caps wall-clock seconds per slot solve (production mode; NOT
  /// deterministic). 0 disables. In split-batch mode every group task and
  /// conflict re-solve gets its own budget of this size, bounding each
  /// task rather than their sum.
  long slot_pivot_budget = 0;
  double slot_deadline_seconds = 0.0;
  /// Plan auditor (src/audit), armed on every backend at registration and
  /// run by the single writer after each split-batch group commit. Fail-fast
  /// by default: an operational engine must never run on an invalid plan,
  /// and the audit's cost is a few percent of a slot solve. Set
  /// audit.mode = kOff to benchmark the bare solver.
  sim::AuditControls audit{sim::AuditControls::Mode::kFailFast};
  /// Idempotent submissions: a SubmitFile whose id was already admitted is
  /// acknowledged without re-enqueuing (AdmissionResult.duplicate). Needed
  /// for exactly-once client retry across a replicated-controller failover;
  /// off by default because standalone callers may legitimately reuse ids.
  bool dedup_submissions = false;
};

class ControllerRuntime {
 public:
  ControllerRuntime(net::Topology topology, RuntimeOptions options = {});
  ~ControllerRuntime();

  ControllerRuntime(const ControllerRuntime&) = delete;
  ControllerRuntime& operator=(const ControllerRuntime&) = delete;

  // --- Backend registration (before the first tick) ---------------------

  /// Postcard backend: split-batch parallel solving and LinkDown
  /// replanning via the committed FilePlan ledger. Returns the backend id.
  int add_postcard_backend(core::PostcardOptions options = {});

  /// Flow-based baseline backend: sequential solve, LinkDown replanning
  /// via the committed FlowAssignment ledger.
  int add_flow_backend(flow::FlowBaselineOptions options = {});

  /// Any other SchedulingPolicy: sequential solve; capacity events are
  /// forwarded when the policy supports them, but committed work is not
  /// replanned (the generic interface exposes no plan ledger).
  int add_backend(std::unique_ptr<sim::SchedulingPolicy> policy);

  // --- Event injection (any thread) -------------------------------------

  RequestIngress& ingress() { return ingress_; }
  EventQueue& events() { return queue_; }

  void fail_link(int slot, int link) { queue_.push(slot, LinkDown{link}); }
  void restore_link(int slot, int link) { queue_.push(slot, LinkUp{link}); }
  void change_capacity(int slot, int link, double capacity) {
    queue_.push(slot, CapacityChange{link, capacity});
  }
  /// Chaos: run `slot`'s solve under `pivot_budget` pivots (one-shot,
  /// backend -1 = all). Deterministic — replays degrade identically.
  void stall_solver(int slot, long pivot_budget, int backend = -1) {
    queue_.push(slot, SolverStall{backend, pivot_budget});
  }
  /// Chaos: skip ladder rungs at `slot` (one-shot; disable_rungs >= 1
  /// forces the greedy fallback, >= 2 forces store-in-place deferral).
  void fault_solver(int slot, int disable_rungs = 1, int backend = -1) {
    queue_.push(slot, SolverFault{backend, disable_rungs});
  }

  // --- Driving (one thread) ---------------------------------------------

  /// Processes the next slot: pushes its SlotTick, drains every due event
  /// in (slot, phase, seq) order, solves the accumulated batch on the
  /// worker pool and commits the plans under the single writer.
  void tick() EXCLUDES(stats_mu_);

  /// Ticks slots [current, num_slots) and then flushes the in-flight
  /// ledger into the delivery stats.
  void run(int num_slots);

  /// Runtime analogue of sim::run_simulation: feeds every workload batch
  /// through the ingress at its slot, ticks, flushes, returns stats().
  RuntimeStats replay(const sim::WorkloadGenerator& workload);

  /// Retires every in-flight plan as delivered (valid committed plans
  /// complete by construction once no further failure can occur). Called
  /// by run(); exposed for tests that tick manually.
  void flush_in_flight();

  // --- Snapshot / restore (src/server persistence; see DESIGN.md §11) ---

  /// Captures the complete controller state — charge ledgers, warm-start
  /// caches, committed in-flight plans, carry-over files, the slot clock,
  /// pending events and all counters — into a plain-data snapshot. Must be
  /// called from the driver thread between ticks (the server's command
  /// loop guarantees this); producers may keep submitting, any arrival
  /// racing past the capture simply lands in the post-restore queue of the
  /// NEXT snapshot.
  RuntimeSnapshot capture_snapshot() const
      EXCLUDES(stats_mu_, ledger_mu_);

  /// Restores a snapshot into a freshly constructed runtime. The topology
  /// shape and the backend registration sequence (kinds and names, in
  /// order) must match the captured runtime's; anything else throws
  /// std::invalid_argument and leaves the runtime unusable. Must run
  /// before the first tick. A restored runtime in deterministic mode
  /// reproduces the captured run's remaining cost series bit for bit.
  void restore_snapshot(const RuntimeSnapshot& snapshot)
      EXCLUDES(stats_mu_, ledger_mu_);

  // --- Observation ------------------------------------------------------

  /// Committed, not-yet-retired plan of `file_id` on a Postcard backend.
  /// Thread-safe (server QueryPlan sessions call this concurrently with
  /// the driver). Returns false when the file has no live plan.
  bool query_plan(int backend, int file_id, core::FilePlan* plan,
                  net::FileRequest* request = nullptr) const
      EXCLUDES(ledger_mu_);

  RuntimeStats stats() const EXCLUDES(stats_mu_);
  int num_backends() const { return static_cast<int>(backends_.size()); }
  const sim::SchedulingPolicy& policy(int backend) const {
    return *backends_[static_cast<std::size_t>(backend)]->policy;
  }
  int current_slot() const { return next_slot_; }

 private:
  struct InFlightPlan {
    net::FileRequest request;
    int deadline_slot = 0;       // release + T, exclusive
    int last_transfer_slot = 0;  // delivery completes at the end of this slot
    core::FilePlan plan;
  };
  struct InFlightFlow {
    net::FileRequest request;
    flow::FlowAssignment assignment;
  };
  struct Backend {
    std::unique_ptr<sim::SchedulingPolicy> policy;
    core::PostcardController* postcard = nullptr;  // typed views; at most
    flow::FlowBaseline* flowbase = nullptr;        // one is non-null
    BackendStats stats;
    // Ordered by request id on purpose: invalidate_plans/invalidate_flows
    // walk these ledgers to build re-request batches (assigning synthetic
    // ids as they go), retire_completed accumulates stats in walk order,
    // and capture_snapshot serializes them — hash order in any of those
    // would leak into committed state and break bit-for-bit replay.
    std::map<int, InFlightPlan> plans;
    std::map<int, InFlightFlow> flows;
    std::vector<net::FileRequest> replan_batch;  // re-injected this slot
    // Store-in-place carryover: files the degradation ladder deferred,
    // re-enqueued into the next slot's batch with one slot less deadline
    // slack. Per-backend (unlike the shared event queue) because each
    // backend defers independently.
    std::vector<net::FileRequest> carry_batch;
    // Ids carried INTO the current slot's batch (rebuilt by solve_slot from
    // carry_batch before consuming it): record_outcome uses this to tell a
    // repeat carry hop from a file's first entry into the carry state, so
    // chain length never re-counts a file. Driver-thread only; derived
    // state, reconstructed each slot (not snapshotted).
    std::unordered_set<int> prior_carry_ids;
    // One-shot chaos overrides armed by SolverStall / SolverFault events;
    // consumed (reset) by the next solve_slot.
    long injected_stall = -1;  // pivot budget, -1 = none
    int injected_fault = 0;    // disable_rungs, 0 = none
    // Split-batch mode: per-group cross-slot warm caches. Snapshot clones
    // are transient, so the driver moves cache g into group g's clone
    // before the solve and back out of its result after the barrier.
    std::vector<core::MasterWarmCache> group_caches;
  };

  void apply_capacity(int link, double capacity);
  void on_link_down(int slot, int link);
  void invalidate_plans(Backend& b, int slot, int link)
      EXCLUDES(stats_mu_, ledger_mu_);
  void invalidate_flows(Backend& b, int slot, int link)
      EXCLUDES(stats_mu_, ledger_mu_);
  /// Queues `volume` stranded at `node` for replanning, or records the
  /// failure when the deadline has no slack left.
  void requeue_remainder(Backend& b, const net::FileRequest& origin, int node,
                         double volume, int deadline_slot, int slot)
      EXCLUDES(stats_mu_);
  void solve_slot(int slot, const std::vector<net::FileRequest>& arrivals)
      EXCLUDES(stats_mu_);
  void record_outcome(Backend& b, int slot,
                      const std::vector<net::FileRequest>& batch,
                      const sim::ScheduleOutcome& outcome) EXCLUDES(stats_mu_);
  /// Writer-side audit of a split-batch group's plans against the LIVE
  /// charge state, after commit_plans. Group clones self-audit against
  /// their snapshot; only this pass sees the combined commitments of all
  /// groups, so only it can catch cross-group oversubscription the
  /// conflict check missed. Counters land in `b.stats.audit_*`.
  void audit_group_commit(Backend& b, int slot,
                          const std::vector<core::FilePlan>& plans,
                          const std::vector<net::FileRequest>& files)
      EXCLUDES(stats_mu_);
  void track_plans(Backend& b, int slot,
                   const std::vector<core::FilePlan>& plans,
                   const std::vector<net::FileRequest>& batch)
      EXCLUDES(ledger_mu_);
  void retire_completed(int before_slot) EXCLUDES(stats_mu_, ledger_mu_);
  bool is_synthetic(int id) const { return id >= kSyntheticIdBase; }

  static constexpr int kSyntheticIdBase = 1 << 28;

  RuntimeOptions options_;
  net::Topology live_topology_;          // capacities after events
  std::vector<double> base_capacity_;    // provisioned capacity per link
  std::vector<bool> link_down_;
  EventQueue queue_;
  RequestIngress ingress_;
  WorkerPool pool_;
  std::vector<std::unique_ptr<Backend>> backends_;
  int next_slot_ = 0;
  int next_synthetic_id_ = kSyntheticIdBase;

  /// Adds a solve to the combined latency histogram and, when at least one
  /// master LP actually ran, to the warm/cold start-type split.
  void add_solve_latency(const sim::ScheduleOutcome& outcome, double seconds)
      REQUIRES(stats_mu_);

  // Guards every Backend::plans / Backend::flows ledger: the driver
  // mutates them while tracking, invalidating and retiring; server
  // QueryPlan sessions read them concurrently through query_plan(). Taken
  // strictly before stats_mu_ when both are needed (retire_completed).
  // Like stats_mu_'s Backend::stats contract, the per-backend halves live
  // behind unique_ptrs and are enforced by TSAN rather than the static
  // analysis.
  mutable base::Mutex ledger_mu_;

  // Also guards every Backend::stats: the driver merges under the lock,
  // stats() copies under it. (Per-backend annotation is out of clang's
  // reach — the Backends live behind unique_ptrs — so that half of the
  // contract is enforced by TSAN instead.)
  mutable base::Mutex stats_mu_;
  int slots_processed_ GUARDED_BY(stats_mu_) = 0;
  long link_events_ GUARDED_BY(stats_mu_) = 0;
  long solver_stalls_ GUARDED_BY(stats_mu_) = 0;
  long solver_faults_ GUARDED_BY(stats_mu_) = 0;
  LatencyHistogram slot_latency_ GUARDED_BY(stats_mu_);
  // Solve-latency split: solves whose first master was warm vs. cold.
  LatencyHistogram solve_latency_ GUARDED_BY(stats_mu_);
  LatencyHistogram solve_latency_warm_ GUARDED_BY(stats_mu_);
  LatencyHistogram solve_latency_cold_ GUARDED_BY(stats_mu_);
};

}  // namespace postcard::runtime
