// Plain-data mirror of everything a ControllerRuntime needs to resume a
// charging period after a restart.
//
// The split of responsibilities: ControllerRuntime::capture_snapshot()
// fills these structs and restore_snapshot() applies them (both touch the
// runtime's private state, so they live in src/runtime); the binary file
// format — versioned header, bounds-checked decoding, checksum, atomic
// replace — lives in src/server/snapshot.h, which serializes exactly the
// fields below. Every volume and cost is carried as the exact double the
// live engine held, so a restored run in deterministic mode reproduces the
// remaining cost series bit for bit (tested in tests/server).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/column_generation.h"
#include "core/plan.h"
#include "flow/baseline.h"
#include "net/file_request.h"
#include "net/topology.h"
#include "runtime/event.h"
#include "runtime/stats.h"

namespace postcard::runtime {

/// One committed, not-yet-delivered Postcard plan (InFlightPlan mirror).
struct PlanLedgerEntry {
  net::FileRequest request;
  int deadline_slot = 0;
  int last_transfer_slot = 0;
  core::FilePlan plan;
};

/// One committed, not-yet-finished baseline flow (InFlightFlow mirror).
struct FlowLedgerEntry {
  net::FileRequest request;
  flow::FlowAssignment assignment;
};

/// Everything one registered backend carries across slots.
struct BackendSnapshot {
  enum class Kind : int { kPostcard = 0, kFlow = 1, kOther = 2 };
  Kind kind = Kind::kOther;
  std::string name;

  // Charge ledger: raw per-link per-slot committed volumes, the observed
  // slot count, the reduce() mismatch counter and the running maxima X_ij
  // (see charging::ChargeState::restore). Empty for kOther backends, whose
  // generic interface exposes no restore hook.
  std::vector<std::vector<double>> series;
  int series_slots = 0;
  long reduce_violations = 0;
  std::vector<double> charged;

  // Cross-slot warm-start caches: the live controller's and, in split-batch
  // mode, one per group stripe.
  core::MasterWarmCache warm_cache;
  std::vector<core::MasterWarmCache> group_caches;

  // Committed in-flight work and files queued for the next solve.
  std::vector<PlanLedgerEntry> plans;
  std::vector<FlowLedgerEntry> flows;
  std::vector<net::FileRequest> replan_batch;
  std::vector<net::FileRequest> carry_batch;

  // One-shot chaos overrides armed but not yet consumed.
  long injected_stall = -1;
  int injected_fault = 0;

  BackendStats stats;
};

/// Full controller state between two ticks.
struct RuntimeSnapshot {
  // Topology fingerprint: restore refuses a runtime whose link structure
  // (endpoints, unit costs) differs. Capacities are live values and are
  // applied, not compared — LinkDown/CapacityChange survive the restart.
  int num_datacenters = 0;
  std::vector<net::Link> links;
  std::vector<double> base_capacity;
  std::vector<bool> link_down;

  // Slot clock and id allocator.
  int next_slot = 0;
  int next_synthetic_id = 0;

  // Engine-level counters and latency histograms.
  int slots_processed = 0;
  long link_events = 0;
  long solver_stalls = 0;
  long solver_faults = 0;
  LatencyHistogram slot_latency;
  LatencyHistogram solve_latency;
  LatencyHistogram solve_latency_warm;
  LatencyHistogram solve_latency_cold;

  // Ingress admission counters.
  long submitted = 0;
  long admitted = 0;
  long ingress_rejected = 0;
  double ingress_rejected_volume = 0.0;

  // Idempotent-submission dedup set (sorted for deterministic bytes);
  // empty unless RuntimeOptions::dedup_submissions. Carried so a retry
  // that lands after a failover is still recognized as a duplicate.
  std::vector<int> admitted_ids;

  // Event-queue sequence watermark at capture time: every push with
  // seq < watermark is either drained into the state above or inside
  // pending_events. The replication primary filters its tapped push
  // buffer against this after shipping a snapshot.
  std::uint64_t event_seq_watermark = 0;

  // Events still queued at capture time (future arrivals, scheduled
  // failures, armed chaos), in drain order.
  std::vector<Event> pending_events;

  std::vector<BackendSnapshot> backends;
};

}  // namespace postcard::runtime
