// Thread-safe request ingress with deadline admission control.
//
// N producer threads (RPC handlers, replication daemons, ...) submit file
// requests concurrently; the ingress validates each against the live
// topology, applies a cheap *necessary* schedulability test against the
// file's deadline, and forwards admitted requests into the event queue as
// FileArrival events for their release slot. Requests whose release slot
// has already been ticked are re-stamped to the next slot — a request can
// never join a batch in the past.
//
// The structural test is deliberately conservative (it must never reject a
// file the solver could schedule): a file of size F with deadline T is
// rejected only when the source has no live egress at all, the destination
// no live ingress, or F exceeds T times the aggregate live egress (or
// ingress) capacity — an upper bound on what *any* store-and-forward or
// flow schedule can move. Files passing the test may still be rejected by
// the per-slot solve; that rejection is the policy's and is accounted
// separately in BackendStats.
#pragma once

#include <atomic>
#include <string>
#include <unordered_set>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "net/file_request.h"
#include "net/topology.h"
#include "runtime/event.h"

namespace postcard::runtime {

struct AdmissionResult {
  bool admitted = false;
  int slot = -1;        // slot whose batch the file joined (admitted only)
  std::string reason;   // human-readable rejection cause
  bool duplicate = false;  // dedup hit: already admitted, not re-enqueued
};

class RequestIngress {
 public:
  /// The ingress keeps its own copy of the topology as a live-capacity
  /// view; the runtime mirrors LinkDown/LinkUp/CapacityChange into it.
  RequestIngress(const net::Topology& topology, EventQueue& queue);

  /// Thread-safe: admits or rejects `file`. Admitted files are pushed into
  /// the event queue as FileArrival events.
  AdmissionResult submit(const net::FileRequest& file) EXCLUDES(mu_);

  /// Enables idempotent submission: a submit whose id was already admitted
  /// returns {admitted=true, duplicate=true, slot=-1} without re-enqueuing
  /// or re-counting, so a client retrying across a failover applies its
  /// file exactly once. Ids are reserved only on *admit* — a rejected id
  /// may be retried (e.g. after a link recovers). Call before producers
  /// exist; off by default because callers may legitimately reuse ids.
  void enable_dedup() EXCLUDES(mu_);

  /// Replication replay: applies an already-stamped admission from the
  /// primary without re-validating or re-stamping (re-running the
  /// admission test against the standby's capacity view could diverge).
  /// Bumps submitted/admitted, registers the id for dedup, and pushes the
  /// FileArrival exactly as the primary's queue saw it.
  void replicate_admit(const net::FileRequest& stamped) EXCLUDES(mu_);

  /// Admitted-id set in sorted order, for deterministic snapshot bytes.
  std::vector<int> admitted_ids() const EXCLUDES(mu_);

  /// Snapshot restore counterpart of admitted_ids(). Quiescent use only.
  void restore_admitted_ids(const std::vector<int>& ids) EXCLUDES(mu_);

  /// Mirrors a network event into the admission capacity view.
  void set_link_capacity(int link, double capacity) EXCLUDES(mu_);

  /// The runtime advances this as slots complete; submissions with an
  /// earlier release slot are re-stamped to `now`.
  void set_now(int slot) { now_.store(slot, std::memory_order_relaxed); }

  /// Snapshot restore: overwrites the admission counters so a restarted
  /// server's accounting identity (accepted+rejected+failed == admitted)
  /// spans the restart. Quiescent use only — call before producers exist.
  void restore_counters(long submitted, long admitted, long rejected,
                        double rejected_volume) EXCLUDES(mu_);

  long submitted() const { return submitted_.load(std::memory_order_relaxed); }
  long admitted() const { return admitted_.load(std::memory_order_relaxed); }
  long rejected() const { return rejected_.load(std::memory_order_relaxed); }
  double rejected_volume() const EXCLUDES(mu_);

 private:
  EventQueue& queue_;
  std::atomic<int> now_{0};
  std::atomic<long> submitted_{0};
  std::atomic<long> admitted_{0};
  std::atomic<long> rejected_{0};

  mutable base::Mutex mu_;
  net::Topology topology_ GUARDED_BY(mu_);
  std::vector<double> egress_ GUARDED_BY(mu_);   // live egress per datacenter
  std::vector<double> ingress_ GUARDED_BY(mu_);  // live ingress per datacenter
  double rejected_volume_ GUARDED_BY(mu_) = 0.0;
  bool dedup_ GUARDED_BY(mu_) = false;
  std::unordered_set<int> admitted_ids_ GUARDED_BY(mu_);
};

}  // namespace postcard::runtime
