#include "runtime/ingress.h"

#include <algorithm>
#include <stdexcept>

namespace postcard::runtime {

RequestIngress::RequestIngress(const net::Topology& topology, EventQueue& queue)
    : queue_(queue), topology_(topology) {
  // No producer can reach *this yet, but the guarded members are touched
  // outside the member-init list, so satisfy the capability analysis too.
  base::MutexLock lock(mu_);
  const int n = topology_.num_datacenters();
  egress_.assign(static_cast<std::size_t>(n), 0.0);
  ingress_.assign(static_cast<std::size_t>(n), 0.0);
  for (const net::Link& l : topology_.links()) {
    egress_[static_cast<std::size_t>(l.from)] += l.capacity;
    ingress_[static_cast<std::size_t>(l.to)] += l.capacity;
  }
}

AdmissionResult RequestIngress::submit(const net::FileRequest& file) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  AdmissionResult result;

  std::string reason;
  {
    base::MutexLock lock(mu_);
    if (dedup_ && admitted_ids_.count(file.id) > 0) {
      result.admitted = true;
      result.duplicate = true;
      return result;
    }
    try {
      net::validate(file, topology_);
      const double deadline = static_cast<double>(file.max_transfer_slots);
      const double out = egress_[static_cast<std::size_t>(file.source)];
      const double in = ingress_[static_cast<std::size_t>(file.destination)];
      if (out <= 0.0) {
        reason = "source has no live egress link";
      } else if (in <= 0.0) {
        reason = "destination has no live ingress link";
      } else if (file.size > deadline * out || file.size > deadline * in) {
        reason = "size exceeds deadline * aggregate live capacity";
      }
    } catch (const std::invalid_argument& e) {
      reason = e.what();
    }
    if (!reason.empty()) rejected_volume_ += std::max(0.0, file.size);
  }
  if (!reason.empty()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    result.admitted = false;
    result.reason = std::move(reason);
    return result;
  }

  net::FileRequest stamped = file;
  stamped.release_slot =
      std::max(stamped.release_slot, now_.load(std::memory_order_relaxed));
  queue_.push(stamped.release_slot, FileArrival{stamped});
  admitted_.fetch_add(1, std::memory_order_relaxed);
  {
    base::MutexLock lock(mu_);
    if (dedup_) admitted_ids_.insert(stamped.id);
  }
  result.admitted = true;
  result.slot = stamped.release_slot;
  return result;
}

void RequestIngress::enable_dedup() {
  base::MutexLock lock(mu_);
  dedup_ = true;
}

void RequestIngress::replicate_admit(const net::FileRequest& stamped) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  queue_.push(stamped.release_slot, FileArrival{stamped});
  admitted_.fetch_add(1, std::memory_order_relaxed);
  base::MutexLock lock(mu_);
  if (dedup_) admitted_ids_.insert(stamped.id);
}

std::vector<int> RequestIngress::admitted_ids() const {
  base::MutexLock lock(mu_);
  // NOLINTNEXTLINE(postcard-determinism: the copy is std::sort'ed two lines down, so hash order never escapes this function)
  std::vector<int> ids(admitted_ids_.begin(), admitted_ids_.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

void RequestIngress::restore_admitted_ids(const std::vector<int>& ids) {
  base::MutexLock lock(mu_);
  admitted_ids_.clear();
  admitted_ids_.insert(ids.begin(), ids.end());
}

void RequestIngress::set_link_capacity(int link, double capacity) {
  base::MutexLock lock(mu_);
  if (link < 0 || link >= topology_.num_links()) {
    throw std::out_of_range("link index outside topology");
  }
  const net::Link& l = topology_.link(link);
  const double delta = capacity - l.capacity;
  egress_[static_cast<std::size_t>(l.from)] += delta;
  ingress_[static_cast<std::size_t>(l.to)] += delta;
  topology_.set_capacity(link, capacity);
}

void RequestIngress::restore_counters(long submitted, long admitted,
                                      long rejected, double rejected_volume) {
  submitted_.store(submitted, std::memory_order_relaxed);
  admitted_.store(admitted, std::memory_order_relaxed);
  rejected_.store(rejected, std::memory_order_relaxed);
  base::MutexLock lock(mu_);
  rejected_volume_ = rejected_volume;
}

double RequestIngress::rejected_volume() const {
  base::MutexLock lock(mu_);
  return rejected_volume_;
}

}  // namespace postcard::runtime
