// Fixed-size worker pool for per-slot solve dispatch.
//
// The runtime creates the pool once and reuses it for every slot; tasks
// are independent LP solves (per policy backend and per batch group), so
// the pool needs nothing fancier than a locked queue and a condition
// variable. A pool with zero threads runs every task inline on the caller
// in submission order — the deterministic single-threaded mode.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace postcard::runtime {

class WorkerPool {
 public:
  /// `num_threads` == 0 builds an inline pool: submit() and run_all()
  /// execute on the calling thread.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Schedules `task`; the future resolves when it has run (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task);

  /// Runs every task and blocks until all have finished. Inline pools
  /// execute them sequentially in index order.
  void run_all(std::vector<std::function<void()>> tasks);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace postcard::runtime
