// Forwarding header: the worker pool moved to src/base so the LP pricing
// layer (src/core) can share it without a runtime dependency. Runtime code
// keeps addressing it as runtime::WorkerPool.
#pragma once

#include "base/worker_pool.h"

namespace postcard::runtime {

using WorkerPool = base::WorkerPool;

}  // namespace postcard::runtime
