#include "sim/csv.h"

#include <cstdio>
#include <stdexcept>

namespace postcard::sim {

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

std::string CsvWriter::cell(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string CsvWriter::cell(long value) {
  return std::to_string(value);
}

void write_cost_series_csv(std::ostream& out,
                           const std::vector<std::string>& labels,
                           const std::vector<const RunResult*>& runs) {
  if (labels.size() != runs.size()) {
    throw std::invalid_argument("one label per run required");
  }
  std::size_t slots = 0;
  for (const RunResult* r : runs) {
    if (slots == 0) slots = r->cost_series.size();
    if (r->cost_series.size() != slots) {
      throw std::invalid_argument("runs cover different slot counts");
    }
  }
  CsvWriter csv(out);
  std::vector<std::string> header = {"slot"};
  header.insert(header.end(), labels.begin(), labels.end());
  csv.row(header);
  for (std::size_t s = 0; s < slots; ++s) {
    std::vector<std::string> cells = {CsvWriter::cell(static_cast<long>(s))};
    for (const RunResult* r : runs) {
      cells.push_back(CsvWriter::cell(r->cost_series[s]));
    }
    csv.row(cells);
  }
}

}  // namespace postcard::sim
