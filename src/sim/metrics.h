// Statistics for the evaluation harness: sample mean, standard deviation
// and Student-t 95% confidence intervals (the paper reports averages with
// 95% CIs over 10 simulation runs).
#pragma once

#include <vector>

namespace postcard::sim {

struct Summary {
  int n = 0;
  double mean = 0.0;
  double stddev = 0.0;          // sample standard deviation (n-1)
  double ci95_halfwidth = 0.0;  // t_{0.975, n-1} * stddev / sqrt(n)

  double lower() const { return mean - ci95_halfwidth; }
  double upper() const { return mean + ci95_halfwidth; }
};

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom
/// (exact table through df = 30, 1.96 beyond).
double student_t_975(int df);

Summary summarize(const std::vector<double>& samples);

}  // namespace postcard::sim
