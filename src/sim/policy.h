// Abstract online scheduling policy.
//
// Both Postcard and the flow-based baseline implement this interface: at
// every time slot the simulator hands the policy the batch K(t) of newly
// released files; the policy routes/schedules them (possibly rejecting some
// when the network cannot meet their deadlines) and updates its internal
// charge state. Costs are read back through the 100-th percentile charge
// state; the full per-slot traffic history remains available for ex-post
// q-percentile accounting.
#pragma once

#include <string>
#include <vector>

#include "charging/charge_state.h"
#include "net/file_request.h"

namespace postcard::sim {

struct ScheduleOutcome {
  std::vector<int> accepted_ids;
  std::vector<int> rejected_ids;
  double rejected_volume = 0.0;  // GB that could not be scheduled
  long lp_iterations = 0;        // summed over the LPs solved this slot
  int lp_solves = 0;
  // Cross-slot warm-start accounting (policies without warm starts leave
  // both zero): solves whose seeded basis passed the solver's verification
  // vs. solves that ran from a cold start (none seeded, or rejected).
  int warm_accepts = 0;
  int cold_starts = 0;
  // Solver hot-path split (column-generation backends; others leave zero):
  // wall time inside the pricing DP vs. the restricted-master solves, master
  // solves resumed in place on the incumbent factorization, and dual
  // warm-start outcomes (slots that seeded from cached duals / columns those
  // seeds contributed).
  double pricing_seconds = 0.0;
  double master_seconds = 0.0;
  int resumed_solves = 0;
  int dual_warm_attempts = 0;
  int dual_seed_columns = 0;

  // ---- Degradation-ladder accounting (policies without a ladder leave
  // everything below zero/empty; active only under SolveControls).
  // Rung reached this slot: full LP optimum / budget-truncated CG committing
  // the incumbent master / greedy shortest-path fallback for files the
  // truncated master left unrouted. At most one of rung_full/rung_truncated
  // is set per slot; rung_greedy counts files routed by the fallback.
  int rung_full = 0;
  int rung_truncated = 0;
  int rung_greedy = 0;
  // Files routed by the DCRoute single-path rung (between truncated CG and
  // the greedy chunker; active only with PostcardOptions::use_dcroute_rung).
  int rung_dcroute = 0;
  // Files neither the (truncated) LP nor the greedy fallback could place
  // this slot. They were NOT accepted and NOT rejected-for-capacity: the
  // caller decides between store-in-place carryover and loud failure.
  std::vector<int> deferred_ids;
  double deferred_volume = 0.0;
  // Solver-failure visibility ("no silent drop" rule): count of slot solves
  // that ended non-optimal, and the last such status (lp::to_string form).
  long solver_failures = 0;
  std::string solver_status;
  // Greedy chunk-budget exhaustion: volume abandoned because
  // max_chunks_per_file ran out, not because the network was full.
  long gave_up_files = 0;
  double gave_up_volume = 0.0;

  // ---- Plan-audit accounting (src/audit; active only under AuditControls).
  // Commits audited this schedule() call, violations found, wall time spent
  // auditing, and one structured line per violation (capped by the policy
  // so a pathological slot cannot balloon the outcome).
  long audit_checks = 0;
  long audit_violations = 0;
  double audit_seconds = 0.0;
  std::vector<std::string> audit_reports;
};

/// Per-slot solve budget and ladder controls, pushed by the runtime's
/// watchdog before each schedule() call. Pivot budgets are deterministic
/// (bit-for-bit replays); wall-clock deadlines are for production.
struct SolveControls {
  long max_pivots = -1;          // total simplex pivots per slot; -1 unlimited
  double deadline_seconds = -1.0;  // wall-clock per slot; < 0 unlimited
  // Fault injection / chaos: disable the leading ladder rungs. >= 1
  // disables the column-generation rungs (as if the solver faulted before
  // its first master solve, forcing the greedy fallback), >= 2 disables
  // the greedy fallback too, leaving only store-in-place deferral.
  int disable_rungs = 0;

  bool active() const {
    return max_pivots >= 0 || deadline_seconds >= 0.0 || disable_rungs > 0;
  }
};

/// Plan-audit knob (src/audit): after every commit the policy re-verifies
/// the paper invariants (6)-(10) on what it actually committed, plus the
/// charge state's treap-vs-oracle consistency. kLog records violations in
/// the ScheduleOutcome (and on stderr) and keeps going; kFailFast throws
/// std::logic_error with the audit summary — no invalid plan survives a
/// slot. The runtime arms fail-fast by default; the offline controllers
/// default to kOff so the figure benches measure the solver, not the audit.
struct AuditControls {
  enum class Mode { kOff = 0, kLog, kFailFast };
  Mode mode = Mode::kOff;
  /// Base tolerance for LP-produced volumes (see audit::AuditOptions).
  double tolerance = 1e-4;
  /// Include the O(L * T log T) treap-vs-oracle charge sweep each audit.
  bool check_charge_consistency = true;
  /// Keep at most this many structured violation lines per outcome.
  int max_reports = 32;

  bool active() const { return mode != Mode::kOff; }
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Schedules the batch released at `slot`. Slots must be presented in
  /// non-decreasing order.
  virtual ScheduleOutcome schedule(int slot,
                                   const std::vector<net::FileRequest>& files) = 0;

  /// Current cost per time interval, sum_ij a_ij X_ij(t).
  virtual double cost_per_interval() const = 0;

  /// Charge state (per-link X_ij and full slot history).
  virtual const charging::ChargeState& charge_state() const = 0;

  /// Applies a live capacity change (runtime LinkDown/LinkUp/
  /// CapacityChange events; 0 means the link is down). Returns false when
  /// the policy does not support network dynamics — the runtime then skips
  /// failure handling for this backend and records the event as unhandled.
  virtual bool set_link_capacity(int /*link*/, double /*capacity*/) {
    return false;
  }

  /// Installs the solve budget / degradation controls applied to every
  /// subsequent schedule() call (sticky until replaced; a default-constructed
  /// SolveControls restores unlimited solves). Returns false when the policy
  /// has no budget support — the runtime then records the watchdog as
  /// unarmed for this backend instead of assuming protection.
  virtual bool set_solve_controls(const SolveControls& /*controls*/) {
    return false;
  }

  /// Arms the plan auditor applied after every subsequent commit (sticky
  /// until replaced; a default-constructed AuditControls disarms it).
  /// Returns false when the policy has no audit support — the runtime then
  /// records the backend as unaudited instead of assuming coverage.
  virtual bool set_audit_controls(const AuditControls& /*controls*/) {
    return false;
  }

  virtual std::string name() const = 0;
};

}  // namespace postcard::sim
