// Abstract online scheduling policy.
//
// Both Postcard and the flow-based baseline implement this interface: at
// every time slot the simulator hands the policy the batch K(t) of newly
// released files; the policy routes/schedules them (possibly rejecting some
// when the network cannot meet their deadlines) and updates its internal
// charge state. Costs are read back through the 100-th percentile charge
// state; the full per-slot traffic history remains available for ex-post
// q-percentile accounting.
#pragma once

#include <string>
#include <vector>

#include "charging/charge_state.h"
#include "net/file_request.h"

namespace postcard::sim {

struct ScheduleOutcome {
  std::vector<int> accepted_ids;
  std::vector<int> rejected_ids;
  double rejected_volume = 0.0;  // GB that could not be scheduled
  long lp_iterations = 0;        // summed over the LPs solved this slot
  int lp_solves = 0;
  // Cross-slot warm-start accounting (policies without warm starts leave
  // both zero): solves whose seeded basis passed the solver's verification
  // vs. solves that ran from a cold start (none seeded, or rejected).
  int warm_accepts = 0;
  int cold_starts = 0;
};

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  /// Schedules the batch released at `slot`. Slots must be presented in
  /// non-decreasing order.
  virtual ScheduleOutcome schedule(int slot,
                                   const std::vector<net::FileRequest>& files) = 0;

  /// Current cost per time interval, sum_ij a_ij X_ij(t).
  virtual double cost_per_interval() const = 0;

  /// Charge state (per-link X_ij and full slot history).
  virtual const charging::ChargeState& charge_state() const = 0;

  /// Applies a live capacity change (runtime LinkDown/LinkUp/
  /// CapacityChange events; 0 means the link is down). Returns false when
  /// the policy does not support network dynamics — the runtime then skips
  /// failure handling for this backend and records the event as unhandled.
  virtual bool set_link_capacity(int /*link*/, double /*capacity*/) {
    return false;
  }

  virtual std::string name() const = 0;
};

}  // namespace postcard::sim
