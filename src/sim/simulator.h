// Time-slotted simulation driver.
//
// Replays a workload against a scheduling policy, slot by slot, recording
// the cost-per-interval trajectory and solver statistics. The same workload
// object can be replayed against several policies (generation is
// random-access deterministic), which is how the paper's Postcard-vs-flow
// comparisons are produced.
#pragma once

#include <vector>

#include "sim/policy.h"
#include "sim/workload.h"

namespace postcard::sim {

struct RunResult {
  std::vector<double> cost_series;  // sum a_ij X_ij(t) after each slot
  double final_cost_per_interval = 0.0;
  double mean_cost_per_interval = 0.0;  // time-average of the series
  double total_volume = 0.0;            // GB offered
  double rejected_volume = 0.0;         // GB the policy could not schedule
  int rejected_files = 0;
  long lp_iterations = 0;
  int lp_solves = 0;
  double wall_seconds = 0.0;
};

RunResult run_simulation(SchedulingPolicy& policy,
                         const WorkloadGenerator& workload);

}  // namespace postcard::sim
