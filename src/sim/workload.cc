#include "sim/workload.h"

#include <cmath>
#include <random>
#include <stdexcept>

namespace postcard::sim {

namespace {
/// SplitMix64: decorrelates (seed, stream) pairs into mt19937_64 seeds so
/// batch(slot) is random-access reproducible.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void validate_params(const WorkloadParams& params) {
  if (params.num_datacenters < 2) {
    throw std::invalid_argument("workload needs at least two datacenters");
  }
  if (params.files_per_slot_min < 0 ||
      params.files_per_slot_max < params.files_per_slot_min) {
    throw std::invalid_argument("bad files-per-slot range");
  }
  if (params.deadline_min < 1 || params.deadline_max < params.deadline_min) {
    throw std::invalid_argument("bad deadline range");
  }
  if (params.size_min <= 0.0 || params.size_max < params.size_min) {
    throw std::invalid_argument("bad size range");
  }
}
}  // namespace

UniformWorkload::UniformWorkload(const WorkloadParams& params)
    : params_(params), topology_(std::max(1, params.num_datacenters)) {
  validate_params(params);
  std::mt19937_64 rng(mix(params.seed));
  std::uniform_real_distribution<double> cost(params.cost_min, params.cost_max);
  topology_ = net::Topology::complete(
      params.num_datacenters, params.link_capacity,
      [&](int, int) { return cost(rng); });
}

UniformWorkload::UniformWorkload(net::Topology topology,
                                 const WorkloadParams& params)
    : params_(params), topology_(std::move(topology)) {
  params_.num_datacenters = topology_.num_datacenters();
  validate_params(params_);
}

TopologyWorkload::TopologyWorkload(net::Topology topology,
                                   const WorkloadParams& params)
    : UniformWorkload(std::move(topology), params) {}

int UniformWorkload::batch_size(int /*slot*/, std::uint64_t rng_draw) const {
  const int span = params_.files_per_slot_max - params_.files_per_slot_min + 1;
  return params_.files_per_slot_min + static_cast<int>(rng_draw % span);
}

int UniformWorkload::pick_source(double u) const {
  return static_cast<int>(u * params_.num_datacenters) %
         params_.num_datacenters;
}

std::vector<net::FileRequest> UniformWorkload::batch(int slot) const {
  if (slot < 0) throw std::out_of_range("negative slot");
  std::mt19937_64 rng(mix(params_.seed ^ mix(static_cast<std::uint64_t>(slot) + 1)));
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::uniform_real_distribution<double> size(params_.size_min, params_.size_max);
  std::uniform_int_distribution<int> deadline(params_.deadline_min,
                                              params_.deadline_max);

  const int count = batch_size(slot, rng());
  std::vector<net::FileRequest> files;
  files.reserve(count);
  for (int i = 0; i < count; ++i) {
    net::FileRequest f;
    f.id = slot * 1000 + i;  // stable, unique across slots for < 1000 files
    f.source = pick_source(unif(rng));
    do {
      f.destination =
          static_cast<int>(unif(rng) * params_.num_datacenters) %
          params_.num_datacenters;
    } while (f.destination == f.source);
    f.size = size(rng);
    f.max_transfer_slots = deadline(rng);
    f.release_slot = slot;
    files.push_back(f);
  }
  return files;
}

DiurnalWorkload::DiurnalWorkload(const WorkloadParams& params, int period_slots,
                                 double trough_factor)
    : UniformWorkload(params), period_(period_slots), trough_(trough_factor) {
  if (period_slots < 1) throw std::invalid_argument("bad diurnal period");
  if (trough_factor < 0.0 || trough_factor > 1.0) {
    throw std::invalid_argument("trough factor must be in [0, 1]");
  }
}

int DiurnalWorkload::batch_size(int slot, std::uint64_t rng_draw) const {
  const int base = UniformWorkload::batch_size(slot, rng_draw);
  const double phase = 2.0 * 3.14159265358979323846 * (slot % period_) / period_;
  const double intensity = trough_ + (1.0 - trough_) * 0.5 * (1.0 + std::sin(phase));
  return std::max(0, static_cast<int>(std::lround(base * intensity)));
}

HotspotWorkload::HotspotWorkload(const WorkloadParams& params, double alpha)
    : UniformWorkload(params) {
  if (alpha < 0.0) throw std::invalid_argument("alpha must be non-negative");
  cumulative_.resize(static_cast<std::size_t>(params.num_datacenters));
  double total = 0.0;
  for (int i = 0; i < params.num_datacenters; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cumulative_[i] = total;
  }
  for (double& c : cumulative_) c /= total;
}

int HotspotWorkload::pick_source(double u) const {
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u <= cumulative_[i]) return static_cast<int>(i);
  }
  return static_cast<int>(cumulative_.size()) - 1;
}

}  // namespace postcard::sim
