// Minimal CSV emission for simulation results.
//
// The bench binaries print google-benchmark counters; for plotting the
// paper's figures (cost trajectories, sweeps) a plain CSV is friendlier.
// CsvWriter quotes fields only when needed and is deliberately tiny — it is
// an output sink, not a data-frame library.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace postcard::sim {

class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Writes one row of already-formatted cells.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with full round-trip precision.
  static std::string cell(double value);
  static std::string cell(long value);
  static std::string cell(int value) { return cell(static_cast<long>(value)); }

 private:
  static std::string escape(const std::string& cell);
  std::ostream& out_;
};

/// Dumps per-slot cost trajectories of one or more labelled runs:
/// header "slot,<label1>,<label2>,..." followed by one row per slot.
/// All runs must have equal series lengths.
void write_cost_series_csv(std::ostream& out,
                           const std::vector<std::string>& labels,
                           const std::vector<const RunResult*>& runs);

}  // namespace postcard::sim
