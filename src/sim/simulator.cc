#include "sim/simulator.h"

#include <chrono>

namespace postcard::sim {

RunResult run_simulation(SchedulingPolicy& policy,
                         const WorkloadGenerator& workload) {
  RunResult result;
  // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
  const auto start = std::chrono::steady_clock::now();
  for (int slot = 0; slot < workload.num_slots(); ++slot) {
    const std::vector<net::FileRequest> files = workload.batch(slot);
    for (const net::FileRequest& f : files) result.total_volume += f.size;
    const ScheduleOutcome outcome = policy.schedule(slot, files);
    result.rejected_volume += outcome.rejected_volume;
    result.rejected_files += static_cast<int>(outcome.rejected_ids.size());
    result.lp_iterations += outcome.lp_iterations;
    result.lp_solves += outcome.lp_solves;
    result.cost_series.push_back(policy.cost_per_interval());
  }
  // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
  const auto end = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(end - start).count();

  if (!result.cost_series.empty()) {
    result.final_cost_per_interval = result.cost_series.back();
    double sum = 0.0;
    for (double c : result.cost_series) sum += c;
    result.mean_cost_per_interval = sum / result.cost_series.size();
  }
  return result;
}

}  // namespace postcard::sim
