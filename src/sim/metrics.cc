#include "sim/metrics.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace postcard::sim {

double student_t_975(int df) {
  if (df < 1) throw std::invalid_argument("degrees of freedom must be >= 1");
  static constexpr std::array<double, 30> kTable = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df <= 30) return kTable[df - 1];
  return 1.960;
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = static_cast<int>(samples.size());
  if (s.n == 0) return s;
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / s.n;
  if (s.n == 1) return s;
  double ss = 0.0;
  for (double v : samples) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / (s.n - 1));
  s.ci95_halfwidth = student_t_975(s.n - 1) * s.stddev / std::sqrt(s.n);
  return s;
}

}  // namespace postcard::sim
