// Workload generators.
//
// UniformWorkload reproduces the paper's evaluation setup (Sec. VII): a
// complete graph of datacenters, per-link unit costs ~ U[cost_min, cost_max],
// per slot a batch of U[files_min, files_max] files with sizes
// U[size_min, size_max] GB, uniformly random distinct endpoints and
// deadlines U[deadline_min, deadline_max] slots.
//
// DiurnalWorkload modulates the batch intensity with a sinusoidal day curve
// (inter-datacenter traffic shows strong diurnal patterns, Sec. II-A);
// HotspotWorkload skews sources toward a few "hot" datacenters (large
// producers such as a primary region). Both reuse the uniform generator's
// topology so results are comparable.
//
// Generation is deterministic and random-access: batch(slot) always returns
// the same files for the same (seed, slot), so different policies can be
// replayed against the identical workload.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/file_request.h"
#include "net/topology.h"

namespace postcard::sim {

struct WorkloadParams {
  int num_datacenters = 20;
  double link_capacity = 100.0;  // GB per slot (t-bar)
  double cost_min = 1.0;
  double cost_max = 10.0;
  int files_per_slot_min = 1;
  int files_per_slot_max = 20;
  double size_min = 10.0;   // GB
  double size_max = 100.0;  // GB
  int deadline_min = 1;     // slots
  int deadline_max = 3;     // slots (max_k T_k of the figures)
  int num_slots = 100;
  std::uint64_t seed = 1;
};

class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;
  virtual const net::Topology& topology() const = 0;
  virtual std::vector<net::FileRequest> batch(int slot) const = 0;
  virtual int num_slots() const = 0;
};

class UniformWorkload : public WorkloadGenerator {
 public:
  explicit UniformWorkload(const WorkloadParams& params);
  const net::Topology& topology() const override { return topology_; }
  std::vector<net::FileRequest> batch(int slot) const override;
  int num_slots() const override { return params_.num_slots; }
  const WorkloadParams& params() const { return params_; }

 protected:
  /// Batch machinery over an externally built topology: overrides
  /// params.num_datacenters with the topology's size and skips the
  /// complete-graph construction (link_capacity / cost_* are ignored).
  UniformWorkload(net::Topology topology, const WorkloadParams& params);

  /// Number of files in `slot`'s batch; hook for intensity modulation.
  virtual int batch_size(int slot, std::uint64_t rng_draw) const;
  /// Source datacenter pick; hook for skew. `u` is uniform in [0,1).
  virtual int pick_source(double u) const;

  WorkloadParams params_;
  net::Topology topology_;
};

/// Uniform batches over a supplied topology (a Fat-Tree or leaf-spine from
/// net/generators.h, say) instead of the complete graph the paper evaluates
/// on. The topology carries its own capacities and costs, so the params'
/// link_capacity / cost_min / cost_max are ignored and num_datacenters is
/// taken from the topology. Endpoint pairs are still uniform over all
/// sites; deadline_min must cover the topology's diameter or most files
/// are structurally unroutable.
class TopologyWorkload : public UniformWorkload {
 public:
  TopologyWorkload(net::Topology topology, const WorkloadParams& params);
};

/// Sinusoidal day curve: batch sizes scale between `trough_factor` and 1
/// with period `period_slots`.
class DiurnalWorkload : public UniformWorkload {
 public:
  DiurnalWorkload(const WorkloadParams& params, int period_slots = 24,
                  double trough_factor = 0.2);

 protected:
  int batch_size(int slot, std::uint64_t rng_draw) const override;

 private:
  int period_;
  double trough_;
};

/// Zipf-skewed sources: datacenter i is picked with weight 1/(i+1)^alpha.
class HotspotWorkload : public UniformWorkload {
 public:
  HotspotWorkload(const WorkloadParams& params, double alpha = 1.0);

 protected:
  int pick_source(double u) const override;

 private:
  std::vector<double> cumulative_;  // normalized cumulative weights
};

}  // namespace postcard::sim
