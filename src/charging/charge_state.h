// Per-link charged-volume state X_ij(t) under 100-th percentile charging.
//
// Once a link has carried volume X during some slot, every later slot can
// re-use up to X for free — the foundation of Postcard's time-shifting. The
// state tracks, per link, the committed volume of every slot (the ledger the
// online controller prices against) and the running maximum X_ij(t).
#pragma once

#include <vector>

#include "charging/percentile.h"
#include "net/topology.h"

namespace postcard::charging {

class ChargeState {
 public:
  explicit ChargeState(int num_links);

  /// Commits `volume` GB on `link` during `slot` (accumulates).
  void commit(int link, int slot, double volume);

  /// Cancels up to `volume` GB previously committed on `link` during
  /// `slot` and recomputes X_ij from the remaining record. Only valid for
  /// committed-but-not-yet-executed traffic (future slots): a link failure
  /// invalidates a plan's tail before the ISP ever sees the volume, so the
  /// speculative charge raise is rolled back. Past slots' actual traffic
  /// must never be uncommitted — that money is spent.
  void uncommit(int link, int slot, double volume);

  /// X_ij(t): the maximum per-slot volume committed on `link` so far.
  double charged(int link) const { return charged_[link]; }

  /// Volume already committed on `link` during `slot`.
  double committed(int link, int slot) const { return recorder_.volume(link, slot); }

  /// Free headroom on `link` during `slot` under the current X_ij: volume
  /// that can be added without raising the charge (may be limited further by
  /// link capacity, which the caller owns).
  double free_headroom(int link, int slot) const {
    const double head = charged_[link] - recorder_.volume(link, slot);
    return head > 0.0 ? head : 0.0;
  }

  /// Cost per time interval, sum_ij a_ij * X_ij — objective (6) divided by
  /// the charging-period length I.
  double cost_per_interval(const net::Topology& topology) const;

  int num_links() const { return static_cast<int>(charged_.size()); }

  /// Full per-slot history, for ex-post q-percentile accounting.
  const PercentileRecorder& recorder() const { return recorder_; }

  /// Per-link running maxima X_ij, for snapshot capture.
  const std::vector<double>& charged_all() const { return charged_; }

  /// Snapshot restore: rebuilds a charge state from its captured parts.
  /// `charged` must hold one running maximum per recorder link; by the
  /// commit()/uncommit() contract it always equals the series maximum, but
  /// it is restored verbatim so a restored state answers every query with
  /// exactly the captured doubles. Throws std::invalid_argument on a link
  /// count mismatch.
  static ChargeState restore(PercentileRecorder recorder,
                             std::vector<double> charged);

  /// TEST ONLY: writable recorder so the audit mutation tests can seed
  /// treap/series desyncs (PercentileRecorder::corrupt_series_for_test).
  PercentileRecorder& mutable_recorder_for_test() { return recorder_; }

 private:
  PercentileRecorder recorder_;
  std::vector<double> charged_;
};

}  // namespace postcard::charging
