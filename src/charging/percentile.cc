#include "charging/percentile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace postcard::charging {

PercentileRecorder::PercentileRecorder(int num_links) {
  if (num_links < 0) throw std::invalid_argument("negative link count");
  series_.resize(static_cast<std::size_t>(num_links));
}

void PercentileRecorder::record(int link, int slot, double volume) {
  if (link < 0 || link >= num_links()) throw std::out_of_range("bad link");
  if (slot < 0) throw std::out_of_range("negative slot");
  if (volume < 0.0) throw std::invalid_argument("negative volume");
  auto& s = series_[link];
  if (slot >= static_cast<int>(s.size())) s.resize(slot + 1, 0.0);
  s[slot] += volume;
  num_slots_ = std::max(num_slots_, slot + 1);
}

void PercentileRecorder::reduce(int link, int slot, double volume) {
  if (link < 0 || link >= num_links()) throw std::out_of_range("bad link");
  if (slot < 0) throw std::out_of_range("negative slot");
  if (volume < 0.0) throw std::invalid_argument("negative volume");
  auto& s = series_[link];
  if (slot >= static_cast<int>(s.size())) return;  // nothing recorded
  s[slot] = std::max(0.0, s[slot] - volume);
}

double PercentileRecorder::volume(int link, int slot) const {
  const auto& s = series_[link];
  if (slot < 0 || slot >= static_cast<int>(s.size())) return 0.0;
  return s[slot];
}

double PercentileRecorder::charged_volume(int link, double q,
                                          int period_slots) const {
  if (q <= 0.0 || q > 100.0) throw std::invalid_argument("q must be in (0, 100]");
  if (period_slots < num_slots_) {
    throw std::invalid_argument("period shorter than observed slots");
  }
  if (period_slots == 0) return 0.0;
  std::vector<double> sorted(series_[link]);
  sorted.resize(period_slots, 0.0);  // quiet slots carry zero traffic
  std::sort(sorted.begin(), sorted.end());
  // Paper's convention (Sec. II-A): the k-th sorted interval with
  // k = q% * period; e.g. 95% of a 1-year period is the 99864-th interval.
  int k = static_cast<int>(std::floor(q / 100.0 * period_slots));
  k = std::clamp(k, 1, period_slots);
  return sorted[k - 1];
}

double PercentileRecorder::total_cost(const std::vector<CostFunction>& link_costs,
                                      double q, int period_slots) const {
  if (static_cast<int>(link_costs.size()) != num_links()) {
    throw std::invalid_argument("one cost function per link required");
  }
  double total = 0.0;
  for (int l = 0; l < num_links(); ++l) {
    total += link_costs[l].evaluate(charged_volume(l, q, period_slots));
  }
  return total;
}

}  // namespace postcard::charging
