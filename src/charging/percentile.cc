#include "charging/percentile.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace postcard::charging {

namespace {
// Rounding slack for reduce(): commits and uncommits of the same plan can
// disagree by accumulation error, never by a meaningful volume.
constexpr double kReduceEps = 1e-9;
}  // namespace

PercentileRecorder::PercentileRecorder(int num_links) {
  if (num_links < 0) throw std::invalid_argument("negative link count");
  series_.resize(static_cast<std::size_t>(num_links));
  order_.resize(static_cast<std::size_t>(num_links));
}

void PercentileRecorder::set_volume(int link, int slot, double value) {
  auto& s = series_[link];
  if (slot >= static_cast<int>(s.size())) {
    // Materialize the gap: every stored slot owns one tree entry, so rank
    // queries only need to account for the never-touched tail implicitly.
    for (int n = static_cast<int>(s.size()); n <= slot; ++n) {
      order_[link].insert(0.0, n);
    }
    s.resize(static_cast<std::size_t>(slot) + 1, 0.0);
  }
  order_[link].erase(s[slot], slot);
  s[slot] = value;
  order_[link].insert(value, slot);
}

void PercentileRecorder::record(int link, int slot, double volume) {
  if (link < 0 || link >= num_links()) throw std::out_of_range("bad link");
  if (slot < 0) throw std::out_of_range("negative slot");
  if (volume < 0.0) throw std::invalid_argument("negative volume");
  set_volume(link, slot, this->volume(link, slot) + volume);
  num_slots_ = std::max(num_slots_, slot + 1);
}

void PercentileRecorder::reduce(int link, int slot, double volume) {
  if (link < 0 || link >= num_links()) throw std::out_of_range("bad link");
  if (slot < 0) throw std::out_of_range("negative slot");
  if (volume < 0.0) throw std::invalid_argument("negative volume");
  if (volume == 0.0) return;
  const double recorded = this->volume(link, slot);
  const double residual = recorded - volume;
  const double slack = kReduceEps * (1.0 + recorded + volume);
  if (residual < -slack) {
    // More volume uncommitted than was ever recorded: the rollback path and
    // the commit ledger disagree. Loud accounting, not a silent clamp.
    ++reduce_violations_;
  }
  if (slot >= static_cast<int>(series_[link].size())) return;  // stays zero
  set_volume(link, slot, std::max(0.0, residual));
}

double PercentileRecorder::volume(int link, int slot) const {
  const auto& s = series_[link];
  if (slot < 0 || slot >= static_cast<int>(s.size())) return 0.0;
  return s[slot];
}

int PercentileRecorder::percentile_rank(double q, int period_slots) {
  // Paper's convention (Sec. II-A): the k-th sorted interval with
  // k = q% * period; e.g. 95% of a 1-year period is the 99864-th interval.
  return static_cast<int>(std::floor(q / 100.0 * period_slots));
}

double PercentileRecorder::charged_volume(int link, double q,
                                          int period_slots) const {
  if (q <= 0.0 || q > 100.0) throw std::invalid_argument("q must be in (0, 100]");
  if (period_slots < num_slots_) {
    throw std::invalid_argument("period shorter than observed slots");
  }
  double charged = 0.0;
  const int k = percentile_rank(q, period_slots);
  if (k > 0) {
    // The sorted period is `implicit` untouched zero slots followed by the
    // stored slots in value order; ranks inside the implicit prefix charge
    // zero without consulting the tree.
    const int stored = order_[link].size();
    const int implicit = period_slots - stored;
    charged = k <= implicit ? 0.0 : order_[link].kth(k - implicit);
  }
  if (cross_check_) {
    const double oracle = charged_volume_sorted(link, q, period_slots);
    if (charged != oracle) {
      throw std::logic_error("incremental percentile diverged from the sort oracle");
    }
  }
  return charged;
}

double PercentileRecorder::charged_volume_sorted(int link, double q,
                                                 int period_slots) const {
  if (q <= 0.0 || q > 100.0) throw std::invalid_argument("q must be in (0, 100]");
  if (period_slots < num_slots_) {
    throw std::invalid_argument("period shorter than observed slots");
  }
  const int k = percentile_rank(q, period_slots);
  if (k == 0) return 0.0;
  std::vector<double> sorted(series_[link]);
  sorted.resize(static_cast<std::size_t>(period_slots), 0.0);  // quiet slots
  std::sort(sorted.begin(), sorted.end());
  return sorted[static_cast<std::size_t>(k) - 1];
}

PercentileRecorder PercentileRecorder::from_series(
    std::vector<std::vector<double>> series, int num_slots,
    long reduce_violations) {
  if (num_slots < 0) throw std::invalid_argument("negative slot count");
  if (reduce_violations < 0) {
    throw std::invalid_argument("negative violation count");
  }
  PercentileRecorder r(static_cast<int>(series.size()));
  r.series_ = std::move(series);
  for (std::size_t l = 0; l < r.series_.size(); ++l) {
    const auto& s = r.series_[l];
    if (static_cast<int>(s.size()) > num_slots) {
      throw std::invalid_argument("series longer than the restored slot count");
    }
    for (std::size_t t = 0; t < s.size(); ++t) {
      if (s[t] < 0.0) throw std::invalid_argument("negative series volume");
      r.order_[l].insert(s[t], static_cast<int>(t));
    }
  }
  r.num_slots_ = num_slots;
  r.reduce_violations_ = reduce_violations;
  return r;
}

void PercentileRecorder::corrupt_series_for_test(int link, int slot,
                                                 double value) {
  if (link < 0 || link >= num_links()) throw std::out_of_range("bad link");
  if (slot < 0) throw std::out_of_range("negative slot");
  auto& s = series_[link];
  if (slot >= static_cast<int>(s.size())) {
    // Keep the tree consistent for the gap (one entry per stored slot) so
    // only the targeted slot desynchronizes.
    for (int n = static_cast<int>(s.size()); n <= slot; ++n) {
      order_[link].insert(0.0, n);
    }
    s.resize(static_cast<std::size_t>(slot) + 1, 0.0);
  }
  s[slot] = value;  // deliberately NOT mirrored into order_[link]
  num_slots_ = std::max(num_slots_, slot + 1);
}

double PercentileRecorder::total_cost(const std::vector<CostFunction>& link_costs,
                                      double q, int period_slots) const {
  if (static_cast<int>(link_costs.size()) != num_links()) {
    throw std::invalid_argument("one cost function per link required");
  }
  double total = 0.0;
  for (int l = 0; l < num_links(); ++l) {
    total += link_costs[l].evaluate(charged_volume(l, q, period_slots));
  }
  return total;
}

}  // namespace postcard::charging
