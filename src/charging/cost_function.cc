#include "charging/cost_function.h"

#include <algorithm>

namespace postcard::charging {

CostFunction CostFunction::linear(double price) {
  return piecewise({{0.0, price}});
}

CostFunction CostFunction::piecewise(
    const std::vector<std::pair<double, double>>& breakpoints) {
  if (breakpoints.empty() || breakpoints.front().first != 0.0) {
    throw std::invalid_argument("first breakpoint must be at volume 0");
  }
  CostFunction f;
  double accumulated = 0.0;
  double prev_x = 0.0;
  double prev_slope = 0.0;
  for (std::size_t i = 0; i < breakpoints.size(); ++i) {
    const auto [x, slope] = breakpoints[i];
    if (slope < 0.0) throw std::invalid_argument("slopes must be non-negative");
    if (i > 0) {
      if (x <= prev_x) {
        throw std::invalid_argument("breakpoints must be strictly increasing");
      }
      accumulated += prev_slope * (x - prev_x);
    }
    f.x_.push_back(x);
    f.slope_.push_back(slope);
    f.base_.push_back(accumulated);
    prev_x = x;
    prev_slope = slope;
  }
  return f;
}

double CostFunction::evaluate(double volume) const {
  const double v = std::max(0.0, volume);
  // Last breakpoint <= v.
  std::size_t i = x_.size() - 1;
  while (i > 0 && x_[i] > v) --i;
  return base_[i] + slope_[i] * (v - x_[i]);
}

double CostFunction::marginal(double volume) const {
  const double v = std::max(0.0, volume);
  std::size_t i = x_.size() - 1;
  while (i > 0 && x_[i] > v) --i;
  return slope_[i];
}

}  // namespace postcard::charging
