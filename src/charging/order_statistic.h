// Order-statistic multiset of per-slot traffic volumes.
//
// The q-th percentile charge of a link is a rank query over its per-slot
// volume series. Re-sorting the series per query is O(T log T); this
// structure keeps one entry per materialized slot in a balanced tree with
// subtree counts, so updating a slot's volume (record/reduce) and answering
// "k-th smallest volume" are both O(log T).
//
// Implementation: a treap keyed by (volume, slot) — the slot tiebreaker
// makes keys unique — with heap priorities derived deterministically from
// the key (splitmix64), so tree shape, and therefore any floating-point
// summaries computed by traversal order, are reproducible run to run.
// Nodes live in a pooled vector with a free list: no per-node allocation,
// index-based links keep the working set compact.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace postcard::charging {

class OrderStatisticTree {
 public:
  /// Inserts the entry (value, tag). Keys must be unique: inserting a
  /// (value, tag) pair that is already present is undefined.
  void insert(double value, int tag) { root_ = insert_at(root_, make_node(value, tag)); }

  /// Removes the entry (value, tag); returns false when absent.
  bool erase(double value, int tag) {
    bool erased = false;
    root_ = erase_at(root_, value, tag, &erased);
    return erased;
  }

  int size() const { return count(root_); }
  bool empty() const { return root_ < 0; }

  /// k-th smallest value, 1-based; k must be in [1, size()].
  double kth(int k) const {
    int node = root_;
    while (true) {
      const int left = count(nodes_[node].left);
      if (k <= left) {
        node = nodes_[node].left;
      } else if (k == left + 1) {
        return nodes_[node].value;
      } else {
        k -= left + 1;
        node = nodes_[node].right;
      }
    }
  }

  /// Largest value, or 0.0 when empty (volumes are non-negative, so the
  /// maximum over an all-implicit-zero series is zero).
  double max() const {
    if (root_ < 0) return 0.0;
    int node = root_;
    while (nodes_[node].right >= 0) node = nodes_[node].right;
    return nodes_[node].value;
  }

 private:
  struct Node {
    double value;
    int tag;
    std::uint64_t prio;
    int left = -1;
    int right = -1;
    int count = 1;
  };

  static std::uint64_t priority(double value, int tag) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    // splitmix64 over the mixed key: deterministic, well-spread priorities.
    std::uint64_t z = bits ^ (static_cast<std::uint64_t>(tag) * 0x9e3779b97f4a7c15ULL);
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static bool key_less(double va, int ta, double vb, int tb) {
    if (va != vb) return va < vb;
    return ta < tb;
  }

  int count(int node) const { return node < 0 ? 0 : nodes_[node].count; }

  void pull(int node) {
    nodes_[node].count = 1 + count(nodes_[node].left) + count(nodes_[node].right);
  }

  int make_node(double value, int tag) {
    int idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
      nodes_[idx] = Node{};
    } else {
      idx = static_cast<int>(nodes_.size());
      nodes_.emplace_back();
    }
    nodes_[idx].value = value;
    nodes_[idx].tag = tag;
    nodes_[idx].prio = priority(value, tag);
    nodes_[idx].left = nodes_[idx].right = -1;
    nodes_[idx].count = 1;
    return idx;
  }

  /// Splits `node` into (< key, >= key) subtrees.
  void split(int node, double value, int tag, int* lo, int* hi) {
    if (node < 0) {
      *lo = *hi = -1;
      return;
    }
    if (key_less(nodes_[node].value, nodes_[node].tag, value, tag)) {
      split(nodes_[node].right, value, tag, &nodes_[node].right, hi);
      *lo = node;
    } else {
      split(nodes_[node].left, value, tag, lo, &nodes_[node].left);
      *hi = node;
    }
    pull(node);
  }

  int insert_at(int node, int fresh) {
    if (node < 0) return fresh;
    if (nodes_[fresh].prio > nodes_[node].prio) {
      split(node, nodes_[fresh].value, nodes_[fresh].tag, &nodes_[fresh].left,
            &nodes_[fresh].right);
      pull(fresh);
      return fresh;
    }
    if (key_less(nodes_[fresh].value, nodes_[fresh].tag, nodes_[node].value,
                 nodes_[node].tag)) {
      nodes_[node].left = insert_at(nodes_[node].left, fresh);
    } else {
      nodes_[node].right = insert_at(nodes_[node].right, fresh);
    }
    pull(node);
    return node;
  }

  int merge(int lo, int hi) {
    if (lo < 0) return hi;
    if (hi < 0) return lo;
    if (nodes_[lo].prio > nodes_[hi].prio) {
      nodes_[lo].right = merge(nodes_[lo].right, hi);
      pull(lo);
      return lo;
    }
    nodes_[hi].left = merge(lo, nodes_[hi].left);
    pull(hi);
    return hi;
  }

  int erase_at(int node, double value, int tag, bool* erased) {
    if (node < 0) return -1;
    if (nodes_[node].value == value && nodes_[node].tag == tag) {
      *erased = true;
      const int joined = merge(nodes_[node].left, nodes_[node].right);
      free_.push_back(node);
      return joined;
    }
    if (key_less(value, tag, nodes_[node].value, nodes_[node].tag)) {
      nodes_[node].left = erase_at(nodes_[node].left, value, tag, erased);
    } else {
      nodes_[node].right = erase_at(nodes_[node].right, value, tag, erased);
    }
    pull(node);
    return node;
  }

  std::vector<Node> nodes_;
  std::vector<int> free_;
  int root_ = -1;
};

}  // namespace postcard::charging
