#include "charging/charge_state.h"

#include <algorithm>
#include <stdexcept>

namespace postcard::charging {

ChargeState::ChargeState(int num_links) : recorder_(num_links) {
  charged_.assign(static_cast<std::size_t>(num_links), 0.0);
}

void ChargeState::commit(int link, int slot, double volume) {
  if (volume == 0.0) return;
  recorder_.record(link, slot, volume);
  charged_[link] = std::max(charged_[link], recorder_.volume(link, slot));
}

double ChargeState::cost_per_interval(const net::Topology& topology) const {
  if (topology.num_links() != num_links()) {
    throw std::invalid_argument("topology link count mismatch");
  }
  double cost = 0.0;
  for (int l = 0; l < num_links(); ++l) {
    cost += topology.link(l).unit_cost * charged_[l];
  }
  return cost;
}

}  // namespace postcard::charging
