#include "charging/charge_state.h"

#include <algorithm>
#include <stdexcept>

namespace postcard::charging {

ChargeState::ChargeState(int num_links) : recorder_(num_links) {
  charged_.assign(static_cast<std::size_t>(num_links), 0.0);
}

void ChargeState::commit(int link, int slot, double volume) {
  if (volume == 0.0) return;
  recorder_.record(link, slot, volume);
  charged_[link] = std::max(charged_[link], recorder_.volume(link, slot));
}

void ChargeState::uncommit(int link, int slot, double volume) {
  if (volume == 0.0) return;
  recorder_.reduce(link, slot, volume);
  // X_ij is the running maximum of the record; with one slot lowered the
  // maximum over the remaining series is exact (past slots are untouched
  // by contract, so real traffic maxima survive). The recorder's
  // order-statistic tree answers it in O(log T) instead of a rescan.
  charged_[link] = recorder_.max_volume(link);
}

ChargeState ChargeState::restore(PercentileRecorder recorder,
                                 std::vector<double> charged) {
  if (recorder.num_links() != static_cast<int>(charged.size())) {
    throw std::invalid_argument("charged vector / recorder link mismatch");
  }
  ChargeState state(recorder.num_links());
  state.recorder_ = std::move(recorder);
  state.charged_ = std::move(charged);
  return state;
}

double ChargeState::cost_per_interval(const net::Topology& topology) const {
  if (topology.num_links() != num_links()) {
    throw std::invalid_argument("topology link count mismatch");
  }
  double cost = 0.0;
  for (int l = 0; l < num_links(); ++l) {
    cost += topology.link(l).unit_cost * charged_[l];
  }
  return cost;
}

}  // namespace postcard::charging
