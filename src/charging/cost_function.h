// ISP cost functions c(x).
//
// Percentile-based charging derives a charging volume x per link and maps it
// to money through a piecewise-linear non-decreasing function (Sec. II-A,
// citing Goldberg et al.). The paper's formulation and evaluation use the
// linear special case c(x) = a * x; the general piecewise form is provided
// for the percentile-accounting ablation and for downstream users.
#pragma once

#include <stdexcept>
#include <vector>

namespace postcard::charging {

class CostFunction {
 public:
  /// c(x) = price * x.
  static CostFunction linear(double price);

  /// Piecewise-linear non-decreasing function given as breakpoints
  /// (x_i, slope_i): slope_i applies on [x_i, x_{i+1}). The first breakpoint
  /// must be x = 0; slopes must be non-negative. Example volume discounts:
  /// {{0, 10}, {100, 8}, {500, 5}}.
  static CostFunction piecewise(
      const std::vector<std::pair<double, double>>& breakpoints);

  /// Cost of charging volume x (x < 0 is clamped to 0).
  double evaluate(double volume) const;

  /// Marginal price at volume x.
  double marginal(double volume) const;

  bool is_linear() const { return x_.size() == 1; }

 private:
  CostFunction() = default;
  std::vector<double> x_;      // breakpoint volumes, x_[0] == 0
  std::vector<double> slope_;  // slope on [x_i, x_{i+1})
  std::vector<double> base_;   // accumulated cost at x_i
};

}  // namespace postcard::charging
