// q-th percentile charging scheme (Sec. II-A).
//
// The ISP records the traffic volume a provider generates on each link in
// every 5-minute interval. At the end of the charging period the per-slot
// volumes are sorted ascending and the q-th percentile entry becomes the
// charging volume. q = 100 (the paper's simplification) charges the maximum.
//
// The recorder keeps the full per-slot series so the same run can be
// accounted under several percentiles ex post (percentile ablation bench).
// Alongside the raw series it maintains a per-link order-statistic tree
// (order_statistic.h), so charged_volume() is an O(log T) rank query and
// the rollback path's max-recompute is O(log T) instead of a full rescan.
// The historical copy+sort implementation stays available as
// charged_volume_sorted(); set_cross_check(true) makes every incremental
// query verify itself against it (tests and the sanitizer suite run with
// the cross-check on).
#pragma once

#include <vector>

#include "charging/cost_function.h"
#include "charging/order_statistic.h"

namespace postcard::charging {

class PercentileRecorder {
 public:
  /// `num_links` series are tracked; slots are appended implicitly by
  /// record() calls and missing slots count as zero traffic.
  explicit PercentileRecorder(int num_links);

  /// Adds `volume` to link `link`'s traffic during slot `slot`.
  void record(int link, int slot, double volume);

  /// Removes `volume` from link `link`'s record during `slot`. Only
  /// meaningful for *future* slots whose planned traffic never flowed — the
  /// runtime cancels the committed tail of a plan when a link failure
  /// invalidates it before execution. The subtraction is exact: a result
  /// below zero by more than a rounding epsilon means the caller uncommitted
  /// volume that was never recorded (an accounting mismatch from the
  /// rollback path); the mismatch is counted in reduce_violations() and the
  /// slot is floored at zero so downstream charging stays well defined.
  void reduce(int link, int slot, double volume);

  /// Accounting mismatches observed by reduce(): reductions that would have
  /// driven a slot's volume negative beyond rounding error. Always zero in
  /// a correct run; a nonzero value is a bug in commit/uncommit pairing.
  long reduce_violations() const { return reduce_violations_; }

  /// Number of slots observed so far (max recorded slot + 1).
  int num_slots() const { return num_slots_; }
  int num_links() const { return static_cast<int>(series_.size()); }

  /// Volume of link `link` during `slot` (zero if never recorded).
  double volume(int link, int slot) const;

  /// Largest per-slot volume recorded on `link` (zero when idle). O(log T).
  double max_volume(int link) const { return order_[link].max(); }

  /// Charging volume of `link` under the q-th percentile scheme, computed
  /// over `period_slots` intervals (>= num_slots(); unrecorded slots are
  /// zero-traffic, matching a mostly idle charging period). q in (0, 100].
  ///
  /// Convention (Sec. II-A): the k-th sorted interval with k = floor(q% *
  /// period); e.g. 95% of a 1-year period is the 99864-th interval. When q
  /// is small enough that q% of the period rounds down to less than one
  /// whole interval (k == 0) there is no interval to charge and the charged
  /// volume is zero — the percentile lies strictly below the first sorted
  /// sample, it does not round up to the minimum busy slot.
  double charged_volume(int link, double q, int period_slots) const;

  /// Convenience: q-th percentile over exactly the observed slots.
  double charged_volume(int link, double q) const {
    return charged_volume(link, q, num_slots_);
  }

  /// Reference implementation of charged_volume(): copies the series and
  /// sorts (O(T log T)). Kept as the oracle the incremental order-statistic
  /// path is checked against.
  double charged_volume_sorted(int link, double q, int period_slots) const;

  /// When enabled, every charged_volume() call also runs the copy+sort
  /// oracle and throws std::logic_error on disagreement.
  void set_cross_check(bool on) { cross_check_ = on; }

  /// Total money across links: sum_l cost_fn(l).evaluate(charged_volume).
  double total_cost(const std::vector<CostFunction>& link_costs, double q,
                    int period_slots) const;

  /// Raw per-slot series of `link` (may be shorter than num_slots() when
  /// the trailing slots never saw traffic). Snapshot capture reads this;
  /// the values are the exact doubles record()/reduce() left behind, so a
  /// restore via from_series() reproduces every future query bit for bit.
  const std::vector<double>& slot_series(int link) const {
    return series_[link];
  }

  /// Snapshot restore: rebuilds a recorder (series + order-statistic
  /// trees) from raw per-link series. `num_slots` restores the observed
  /// slot count (it may exceed the longest series when reduce() zeroed a
  /// trailing slot) and `reduce_violations` the accounting-mismatch
  /// counter, so a restored recorder is indistinguishable from the one
  /// captured. Throws std::invalid_argument on negative volumes or a
  /// series longer than `num_slots`.
  static PercentileRecorder from_series(std::vector<std::vector<double>> series,
                                        int num_slots, long reduce_violations);

  /// TEST ONLY: writes `value` into the raw series WITHOUT updating the
  /// order-statistic tree, desynchronizing the incremental path from the
  /// copy+sort oracle. Exists so the audit mutation tests can prove the
  /// auditor's charge-consistency check detects exactly this failure mode;
  /// production code has no reason to call it.
  void corrupt_series_for_test(int link, int slot, double value);

 private:
  /// Rewrites link's slot volume to `value`, keeping series and tree in step.
  void set_volume(int link, int slot, double value);

  static int percentile_rank(double q, int period_slots);

  std::vector<std::vector<double>> series_;     // [link][slot]
  std::vector<OrderStatisticTree> order_;       // one entry per stored slot
  int num_slots_ = 0;
  long reduce_violations_ = 0;
  bool cross_check_ = false;
};

}  // namespace postcard::charging
