// q-th percentile charging scheme (Sec. II-A).
//
// The ISP records the traffic volume a provider generates on each link in
// every 5-minute interval. At the end of the charging period the per-slot
// volumes are sorted ascending and the q-th percentile entry becomes the
// charging volume. q = 100 (the paper's simplification) charges the maximum.
//
// The recorder keeps the full per-slot series so the same run can be
// accounted under several percentiles ex post (percentile ablation bench).
#pragma once

#include <vector>

#include "charging/cost_function.h"

namespace postcard::charging {

class PercentileRecorder {
 public:
  /// `num_links` series are tracked; slots are appended implicitly by
  /// record() calls and missing slots count as zero traffic.
  explicit PercentileRecorder(int num_links);

  /// Adds `volume` to link `link`'s traffic during slot `slot`.
  void record(int link, int slot, double volume);

  /// Removes up to `volume` from link `link`'s record during `slot`
  /// (clamped at zero). Only meaningful for *future* slots whose planned
  /// traffic never flowed — the runtime cancels the committed tail of a
  /// plan when a link failure invalidates it before execution.
  void reduce(int link, int slot, double volume);

  /// Number of slots observed so far (max recorded slot + 1).
  int num_slots() const { return num_slots_; }
  int num_links() const { return static_cast<int>(series_.size()); }

  /// Volume of link `link` during `slot` (zero if never recorded).
  double volume(int link, int slot) const;

  /// Charging volume of `link` under the q-th percentile scheme, computed
  /// over `period_slots` intervals (>= num_slots(); unrecorded slots are
  /// zero-traffic, matching a mostly idle charging period). q in (0, 100].
  double charged_volume(int link, double q, int period_slots) const;

  /// Convenience: q-th percentile over exactly the observed slots.
  double charged_volume(int link, double q) const {
    return charged_volume(link, q, num_slots_);
  }

  /// Total money across links: sum_l cost_fn(l).evaluate(charged_volume).
  double total_cost(const std::vector<CostFunction>& link_costs, double q,
                    int period_slots) const;

 private:
  std::vector<std::vector<double>> series_;  // [link][slot]
  int num_slots_ = 0;
};

}  // namespace postcard::charging
