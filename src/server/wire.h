// Wire primitives: bounds-checked binary encoding and length-prefixed
// framing for the controller's socket protocol and snapshot files.
//
// Everything on the wire is little-endian and explicitly sized; doubles
// travel as their IEEE-754 bit patterns, so a value decodes to exactly the
// double that was encoded — the foundation of the snapshot's bit-for-bit
// restore guarantee. ByteReader never reads past its buffer: every
// accessor checks bounds and throws WireError on a short or lying input,
// so a malformed frame can reject a session but never corrupt the server.
//
// Frame layout (see DESIGN.md §11):
//
//   u32 payload_length   (bytes after the 8-byte header)
//   u16 protocol version (kProtocolVersion; mismatches are rejected)
//   u16 message type     (MessageType)
//   ...payload...
//
// The declared payload length is validated against a caller-supplied
// maximum BEFORE any allocation, so an adversarial 4 GB declaration costs
// nothing but a closed connection.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace postcard::server {

inline constexpr std::uint16_t kProtocolVersion = 4;

/// Default cap on a single frame's payload. SubmitBatch with tens of
/// thousands of files and a full stats reply both fit comfortably.
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 24;

/// Malformed or truncated wire data. Always an input problem, never UB:
/// sessions catch it, answer with an Error frame when the socket still
/// works, and close.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A deadline expired mid-read or mid-write (SO_RCVTIMEO/SO_SNDTIMEO or an
/// explicit timeout_ms). Distinct from WireError so callers can tell a
/// *slow* peer from a *broken* one: the idle-session reaper closes quietly
/// on a boundary timeout instead of counting a protocol error, and the
/// replication primary drops a stalled standby for reseeding rather than
/// treating it as malformed input.
class WireTimeout : public WireError {
 public:
  explicit WireTimeout(const std::string& what, bool at_frame_boundary)
      : WireError(what), at_frame_boundary_(at_frame_boundary) {}
  /// True when no byte of the current unit had been transferred yet — the
  /// peer is idle, not mid-frame, so closing loses nothing.
  bool at_frame_boundary() const { return at_frame_boundary_; }

 private:
  bool at_frame_boundary_;
};

enum class MessageType : std::uint16_t {
  // Requests.
  kSubmitFile = 1,
  kSubmitBatch = 2,
  kQueryPlan = 3,
  kQueryStats = 4,
  kSnapshot = 5,
  kShutdown = 6,
  kAdvanceSlot = 7,
  // Replies.
  kSubmitReply = 65,
  kBatchReply = 66,
  kPlanReply = 67,
  kStatsReply = 68,
  kSnapshotReply = 69,
  kShutdownReply = 70,
  kAdvanceReply = 71,
  kBackpressure = 72,  // admission control said no; explicit, not a hangup
  kError = 73,         // protocol violation; the session closes after this
  // Replication channel (primary <-> standby), DESIGN.md §14. Numbered
  // from 100 so client-facing types can grow without colliding.
  kReplHello = 100,      // standby -> primary: introduce + last commit slot
  kReplSnapshot = 101,   // primary -> standby: full PSNP bootstrap image
  kReplEvents = 102,     // primary -> standby: ordered event-push batch
  kReplCommit = 103,     // primary -> standby: slot commit + fingerprint
  kReplHeartbeat = 104,  // primary -> standby: liveness between commits
  kReplAck = 105,        // standby -> primary: applied commit + own digest
  kReplReseed = 106,     // standby -> primary: diverged, ship fresh snapshot
};

/// Appends fixed-width little-endian values to a growing buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    append_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void raw(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buf_;
};

/// Reads fixed-width little-endian values; every read is bounds-checked.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = take<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > remaining()) {
      throw WireError("string length " + std::to_string(n) +
                      " exceeds remaining " + std::to_string(remaining()) +
                      " bytes");
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += n;
    return s;
  }
  /// Element-count prefix for vectors: rejects counts that could not
  /// possibly fit in the remaining payload (each element is at least
  /// `min_element_bytes`), so a lying count cannot trigger a huge reserve.
  std::size_t length(std::size_t min_element_bytes) {
    const std::uint32_t n = u32();
    if (min_element_bytes > 0 &&
        static_cast<std::size_t>(n) > remaining() / min_element_bytes) {
      throw WireError("declared element count " + std::to_string(n) +
                      " cannot fit in remaining " +
                      std::to_string(remaining()) + " bytes");
    }
    return n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  /// Trailing garbage is as much of a protocol violation as truncation.
  void require_done() const {
    if (!done()) {
      throw WireError(std::to_string(remaining()) +
                      " trailing bytes after message payload");
    }
  }

 private:
  template <typename T>
  T take() {
    if (remaining() < sizeof(T)) {
      throw WireError("truncated payload: need " + std::to_string(sizeof(T)) +
                      " bytes, have " + std::to_string(remaining()));
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// A decoded frame header + payload.
struct Frame {
  MessageType type = MessageType::kError;
  std::vector<std::uint8_t> payload;
};

/// Encodes a complete frame (header + payload) ready for one write.
std::vector<std::uint8_t> encode_frame(MessageType type,
                                       const std::vector<std::uint8_t>& payload);

/// Blocking exact-length read/write over a socket fd, resuming across
/// EINTR and short transfers. read_exact returns false on a clean EOF at
/// byte 0 (peer closed between frames), throws WireTimeout when a receive
/// deadline set on the socket (SO_RCVTIMEO) expires, and throws WireError
/// on a mid-frame EOF or socket error. write_all throws WireError on error
/// (MSG_NOSIGNAL; a vanished peer must never SIGPIPE the server); with
/// `timeout_ms >= 0` it bounds the WHOLE write with a poll()-based
/// deadline and throws WireTimeout when the peer stops draining — the
/// replication primary uses this so one stalled standby cannot wedge the
/// slot driver forever.
bool read_exact(int fd, std::uint8_t* out, std::size_t n);
void write_all(int fd, const std::uint8_t* data, std::size_t n,
               int timeout_ms = -1);

/// Reads one frame. Returns false on clean EOF before any header byte.
/// Throws WireTimeout when the socket's receive deadline expires and
/// WireError on truncation, a version mismatch, or a declared payload
/// length beyond `max_frame_bytes` (checked before allocating).
bool read_frame(int fd, Frame* out,
                std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Writes one frame; `timeout_ms >= 0` bounds the write (see write_all).
void write_frame(int fd, MessageType type,
                 const std::vector<std::uint8_t>& payload,
                 int timeout_ms = -1);

}  // namespace postcard::server
