#include "server/snapshot.h"

#include <cerrno>
#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

#include "audit/fingerprint.h"
#include "server/protocol.h"

namespace postcard::server {

namespace {

// The event codec (EventTag discriminants, encode_event/decode_event)
// moved to protocol.cc so the replication stream shares the exact byte
// layout of the snapshot's pending-event section.

void encode_warm_cache(ByteWriter& w, const core::MasterWarmCache& c) {
  w.boolean(c.valid);
  w.i64(c.captured_solves);
  w.u32(static_cast<std::uint32_t>(c.arc_rows.size()));
  for (const auto& [key, row] : c.arc_rows) {
    w.i32(key.first);
    w.i32(key.second);
    w.i32(row.cap_basic);
    w.i32(row.chg_basic);
    w.u8(static_cast<std::uint8_t>(row.cap_status));
    w.u8(static_cast<std::uint8_t>(row.chg_status));
  }
}

core::MasterWarmCache decode_warm_cache(ByteReader& r) {
  core::MasterWarmCache c;
  c.valid = r.boolean();
  c.captured_solves = r.i64();
  const std::size_t rows = r.length(4 * 4 + 2);
  for (std::size_t i = 0; i < rows; ++i) {
    const int link = r.i32();
    const int slot = r.i32();
    core::MasterWarmCache::ArcRowState row;
    row.cap_basic = r.i32();
    row.chg_basic = r.i32();
    row.cap_status = static_cast<signed char>(r.u8());
    row.chg_status = static_cast<signed char>(r.u8());
    c.arc_rows.emplace(std::make_pair(link, slot), row);
  }
  return c;
}

void encode_series(ByteWriter& w, const std::vector<std::vector<double>>& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  for (const std::vector<double>& link : s) {
    w.u32(static_cast<std::uint32_t>(link.size()));
    for (double v : link) w.f64(v);
  }
}

std::vector<std::vector<double>> decode_series(ByteReader& r) {
  std::vector<std::vector<double>> s;
  const std::size_t links = r.length(4);
  s.reserve(links);
  for (std::size_t l = 0; l < links; ++l) {
    const std::size_t slots = r.length(8);
    std::vector<double> link;
    link.reserve(slots);
    for (std::size_t t = 0; t < slots; ++t) link.push_back(r.f64());
    s.push_back(std::move(link));
  }
  return s;
}

void encode_backend(ByteWriter& w, const runtime::BackendSnapshot& b) {
  w.i32(static_cast<int>(b.kind));
  w.str(b.name);
  encode_series(w, b.series);
  w.i32(b.series_slots);
  w.i64(b.reduce_violations);
  w.u32(static_cast<std::uint32_t>(b.charged.size()));
  for (double c : b.charged) w.f64(c);
  encode_warm_cache(w, b.warm_cache);
  w.u32(static_cast<std::uint32_t>(b.group_caches.size()));
  for (const core::MasterWarmCache& c : b.group_caches) encode_warm_cache(w, c);
  w.u32(static_cast<std::uint32_t>(b.plans.size()));
  for (const runtime::PlanLedgerEntry& p : b.plans) {
    encode_file_request(w, p.request);
    w.i32(p.deadline_slot);
    w.i32(p.last_transfer_slot);
    encode_file_plan(w, p.plan);
  }
  w.u32(static_cast<std::uint32_t>(b.flows.size()));
  for (const runtime::FlowLedgerEntry& f : b.flows) {
    encode_file_request(w, f.request);
    w.i32(f.assignment.file_id);
    w.f64(f.assignment.rate);
    w.i32(f.assignment.start_slot);
    w.i32(f.assignment.duration);
    w.u32(static_cast<std::uint32_t>(f.assignment.link_rates.size()));
    for (const auto& [link, rate] : f.assignment.link_rates) {
      w.i32(link);
      w.f64(rate);
    }
  }
  w.u32(static_cast<std::uint32_t>(b.replan_batch.size()));
  for (const net::FileRequest& f : b.replan_batch) encode_file_request(w, f);
  w.u32(static_cast<std::uint32_t>(b.carry_batch.size()));
  for (const net::FileRequest& f : b.carry_batch) encode_file_request(w, f);
  w.i64(b.injected_stall);
  w.i32(b.injected_fault);
  encode_backend_stats(w, b.stats);
}

runtime::BackendSnapshot decode_backend(ByteReader& r) {
  runtime::BackendSnapshot b;
  const int kind = r.i32();
  if (kind < 0 || kind > 2) {
    throw WireError("invalid backend kind " + std::to_string(kind));
  }
  b.kind = static_cast<runtime::BackendSnapshot::Kind>(kind);
  b.name = r.str();
  b.series = decode_series(r);
  b.series_slots = r.i32();
  b.reduce_violations = r.i64();
  const std::size_t charged = r.length(8);
  b.charged.reserve(charged);
  for (std::size_t i = 0; i < charged; ++i) b.charged.push_back(r.f64());
  b.warm_cache = decode_warm_cache(r);
  const std::size_t groups = r.length(1 + 8 + 4);
  b.group_caches.reserve(groups);
  for (std::size_t i = 0; i < groups; ++i) {
    b.group_caches.push_back(decode_warm_cache(r));
  }
  const std::size_t plans = r.length(4 * 4 + 8 + 4 + 4 + 4 + 4);
  b.plans.reserve(plans);
  for (std::size_t i = 0; i < plans; ++i) {
    runtime::PlanLedgerEntry p;
    p.request = decode_file_request(r);
    p.deadline_slot = r.i32();
    p.last_transfer_slot = r.i32();
    p.plan = decode_file_plan(r);
    b.plans.push_back(std::move(p));
  }
  const std::size_t flows = r.length(4 * 4 + 8 + 4 + 8 + 4 + 4 + 4);
  b.flows.reserve(flows);
  for (std::size_t i = 0; i < flows; ++i) {
    runtime::FlowLedgerEntry f;
    f.request = decode_file_request(r);
    f.assignment.file_id = r.i32();
    f.assignment.rate = r.f64();
    f.assignment.start_slot = r.i32();
    f.assignment.duration = r.i32();
    const std::size_t rates = r.length(4 + 8);
    f.assignment.link_rates.reserve(rates);
    for (std::size_t j = 0; j < rates; ++j) {
      const int link = r.i32();
      const double rate = r.f64();
      f.assignment.link_rates.emplace_back(link, rate);
    }
    b.flows.push_back(std::move(f));
  }
  const std::size_t replans = r.length(4 * 4 + 8);
  b.replan_batch.reserve(replans);
  for (std::size_t i = 0; i < replans; ++i) {
    b.replan_batch.push_back(decode_file_request(r));
  }
  const std::size_t carries = r.length(4 * 4 + 8);
  b.carry_batch.reserve(carries);
  for (std::size_t i = 0; i < carries; ++i) {
    b.carry_batch.push_back(decode_file_request(r));
  }
  b.injected_stall = r.i64();
  b.injected_fault = r.i32();
  b.stats = decode_backend_stats(r);
  return b;
}

void encode_body(ByteWriter& w, const runtime::RuntimeSnapshot& snap) {
  w.i32(snap.num_datacenters);
  w.u32(static_cast<std::uint32_t>(snap.links.size()));
  for (const net::Link& l : snap.links) {
    w.i32(l.from);
    w.i32(l.to);
    w.f64(l.capacity);
    w.f64(l.unit_cost);
  }
  w.u32(static_cast<std::uint32_t>(snap.base_capacity.size()));
  for (double c : snap.base_capacity) w.f64(c);
  w.u32(static_cast<std::uint32_t>(snap.link_down.size()));
  for (bool down : snap.link_down) w.boolean(down);
  w.i32(snap.next_slot);
  w.i32(snap.next_synthetic_id);
  w.i32(snap.slots_processed);
  w.i64(snap.link_events);
  w.i64(snap.solver_stalls);
  w.i64(snap.solver_faults);
  encode_histogram(w, snap.slot_latency);
  encode_histogram(w, snap.solve_latency);
  encode_histogram(w, snap.solve_latency_warm);
  encode_histogram(w, snap.solve_latency_cold);
  w.i64(snap.submitted);
  w.i64(snap.admitted);
  w.i64(snap.ingress_rejected);
  w.f64(snap.ingress_rejected_volume);
  w.u32(static_cast<std::uint32_t>(snap.admitted_ids.size()));
  for (int id : snap.admitted_ids) w.i32(id);
  w.u64(snap.event_seq_watermark);
  w.u32(static_cast<std::uint32_t>(snap.pending_events.size()));
  for (const runtime::Event& e : snap.pending_events) encode_event(w, e);
  w.u32(static_cast<std::uint32_t>(snap.backends.size()));
  for (const runtime::BackendSnapshot& b : snap.backends) encode_backend(w, b);
}

runtime::RuntimeSnapshot decode_body(ByteReader& r) {
  runtime::RuntimeSnapshot snap;
  snap.num_datacenters = r.i32();
  const std::size_t links = r.length(4 + 4 + 8 + 8);
  snap.links.reserve(links);
  for (std::size_t i = 0; i < links; ++i) {
    net::Link l;
    l.from = r.i32();
    l.to = r.i32();
    l.capacity = r.f64();
    l.unit_cost = r.f64();
    snap.links.push_back(l);
  }
  const std::size_t caps = r.length(8);
  snap.base_capacity.reserve(caps);
  for (std::size_t i = 0; i < caps; ++i) snap.base_capacity.push_back(r.f64());
  const std::size_t downs = r.length(1);
  snap.link_down.reserve(downs);
  for (std::size_t i = 0; i < downs; ++i) snap.link_down.push_back(r.boolean());
  snap.next_slot = r.i32();
  snap.next_synthetic_id = r.i32();
  snap.slots_processed = r.i32();
  snap.link_events = r.i64();
  snap.solver_stalls = r.i64();
  snap.solver_faults = r.i64();
  snap.slot_latency = decode_histogram(r);
  snap.solve_latency = decode_histogram(r);
  snap.solve_latency_warm = decode_histogram(r);
  snap.solve_latency_cold = decode_histogram(r);
  snap.submitted = r.i64();
  snap.admitted = r.i64();
  snap.ingress_rejected = r.i64();
  snap.ingress_rejected_volume = r.f64();
  const std::size_t ids = r.length(4);
  snap.admitted_ids.reserve(ids);
  for (std::size_t i = 0; i < ids; ++i) snap.admitted_ids.push_back(r.i32());
  snap.event_seq_watermark = r.u64();
  const std::size_t events = r.length(4 + 8 + 1);
  snap.pending_events.reserve(events);
  for (std::size_t i = 0; i < events; ++i) {
    snap.pending_events.push_back(decode_event(r));
  }
  const std::size_t backends = r.length(4);
  snap.backends.reserve(backends);
  for (std::size_t i = 0; i < backends; ++i) {
    snap.backends.push_back(decode_backend(r));
  }
  return snap;
}

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  // Same hash the replication divergence fingerprint uses; one
  // implementation, one set of constants (src/audit/fingerprint.h).
  return audit::fnv1a64(data, n);
}

std::vector<std::uint8_t> encode_snapshot(
    const runtime::RuntimeSnapshot& snap) {
  ByteWriter body;
  encode_body(body, snap);

  ByteWriter file;
  file.u32(kSnapshotMagic);
  file.u32(kSnapshotVersion);
  file.u64(static_cast<std::uint64_t>(body.size()));
  file.raw(body.data().data(), body.size());
  const std::uint64_t checksum = fnv1a64(file.data().data(), file.size());
  file.u64(checksum);
  return file.take();
}

runtime::RuntimeSnapshot decode_snapshot(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) {
    // Distinct from mere truncation: an empty file usually means the
    // snapshot was never written (crash before first byte), not damaged.
    throw WireError("snapshot file is empty");
  }
  if (bytes.size() < 4 + 4 + 8 + 8) {
    throw WireError("snapshot shorter than header + trailer");
  }
  ByteReader header(bytes.data(), bytes.size() - 8);
  const std::uint32_t magic = header.u32();
  if (magic != kSnapshotMagic) {
    throw WireError("bad snapshot magic");
  }
  const std::uint32_t version = header.u32();
  if (version != kSnapshotVersion) {
    throw WireError("unsupported snapshot version " + std::to_string(version));
  }
  const std::uint64_t body_len = header.u64();
  if (body_len != header.remaining()) {
    throw WireError("snapshot body length mismatch: header says " +
                    std::to_string(body_len) + ", file holds " +
                    std::to_string(header.remaining()));
  }
  ByteReader trailer(bytes.data() + bytes.size() - 8, 8);
  const std::uint64_t stored = trailer.u64();
  trailer.require_done();
  const std::uint64_t actual = fnv1a64(bytes.data(), bytes.size() - 8);
  if (stored != actual) {
    throw WireError("snapshot checksum mismatch (file corrupt or tampered)");
  }
  runtime::RuntimeSnapshot snap = decode_body(header);
  header.require_done();
  return snap;
}

void write_snapshot_file(const std::string& path,
                         const runtime::RuntimeSnapshot& snap) {
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw WireError("cannot create " + tmp + ": errno " +
                    std::to_string(errno));
  }
  try {
    std::size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t r =
          ::write(fd, bytes.data() + written, bytes.size() - written);
      if (r < 0) {
        if (errno == EINTR) continue;
        throw WireError("write to " + tmp + " failed: errno " +
                        std::to_string(errno));
      }
      written += static_cast<std::size_t>(r);
    }
    if (::fsync(fd) != 0) {
      throw WireError("fsync of " + tmp + " failed: errno " +
                      std::to_string(errno));
    }
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw WireError("rename " + tmp + " -> " + path + " failed: errno " +
                    std::to_string(errno));
  }
}

runtime::RuntimeSnapshot read_snapshot_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw WireError("cannot open snapshot " + path + ": errno " +
                    std::to_string(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r > 0) {
      bytes.insert(bytes.end(), buf, buf + r);
      continue;
    }
    if (r == 0) break;
    if (errno == EINTR) continue;
    ::close(fd);
    throw WireError("read of snapshot " + path + " failed: errno " +
                    std::to_string(errno));
  }
  ::close(fd);
  return decode_snapshot(bytes);
}

}  // namespace postcard::server
