// Blocking client for the controller protocol.
//
// One synchronous request/reply exchange per call over a single TCP
// connection. Thin by design: tests, the postcard_client example and soak
// drivers all use this same class, so every protocol path the server
// exposes is exercised through real sockets. Not thread-safe — one
// PostcardClient per thread (the soak test opens eight).
#pragma once

#include <string>

#include "server/protocol.h"

namespace postcard::server {

class PostcardClient {
 public:
  /// Connects immediately; throws WireError on failure. With
  /// `io_timeout_ms > 0` every send/recv on the connection carries that
  /// deadline (SO_RCVTIMEO/SO_SNDTIMEO), surfacing as WireTimeout — the
  /// failover client uses this so a dead primary fails a call in bounded
  /// time instead of blocking forever. 0 keeps the historical fully
  /// blocking behavior.
  PostcardClient(const std::string& host, int port,
                 std::size_t max_frame_bytes = kDefaultMaxFrameBytes,
                 int io_timeout_ms = 0);
  ~PostcardClient();

  PostcardClient(const PostcardClient&) = delete;
  PostcardClient& operator=(const PostcardClient&) = delete;

  /// Submits one file. An admission rejection arrives as a kBackpressure
  /// frame and is surfaced as verdict.admitted == false with the reason —
  /// it does NOT throw; only protocol/transport failures throw WireError.
  SubmitVerdict submit_file(const net::FileRequest& file);

  /// Submits a batch; one verdict per file, in submission order.
  std::vector<SubmitVerdict> submit_batch(
      const std::vector<net::FileRequest>& files);

  /// Committed in-flight plan of `file_id` on `backend`, if any.
  PlanReply query_plan(int backend, int file_id);

  /// Full runtime stats snapshot (server counters included).
  runtime::RuntimeStats query_stats();

  /// Asks the server to snapshot to `path` ("" = its configured path).
  /// Returns the written path; throws WireError when the server reports
  /// failure.
  std::string snapshot(const std::string& path = "");

  /// Ticks the slot clock `slots` times; returns the new current slot.
  int advance(int slots = 1);

  /// Graceful drain: the reply certifies the final snapshot was written
  /// and in-flight work retired.
  void shutdown();

  int fd() const { return fd_; }

 private:
  /// Sends `request` and reads one reply frame, which must be of type
  /// `expect` (kBackpressure is additionally allowed where documented,
  /// and a kError reply is converted into a thrown WireError).
  Frame roundtrip(MessageType request, const std::vector<std::uint8_t>& payload,
                  MessageType expect, bool allow_backpressure = false);

  int fd_ = -1;
  std::size_t max_frame_bytes_;
};

}  // namespace postcard::server
