// Flat text metrics rendering of a RuntimeStats snapshot.
//
// Prometheus-style exposition: one `name value` line per scalar, with
// per-backend counters labeled `postcard_backend_*{backend="..."}`. This
// is the payload behind `postcard_client --metrics-dump` and the human
// half of the QueryStats reply — the binary StatsReply carries the full
// structured codec; this renders the same snapshot for eyeballs, grep and
// scrape jobs.
#pragma once

#include <string>

#include "runtime/stats.h"

namespace postcard::server {

std::string format_metrics(const runtime::RuntimeStats& stats);

}  // namespace postcard::server
