#include "server/metrics.h"

#include <sstream>

namespace postcard::server {

namespace {

void line(std::ostream& os, const char* name, double value) {
  os << name << ' ' << value << '\n';
}

void line(std::ostream& os, const char* name, long value) {
  os << name << ' ' << value << '\n';
}

std::string label(const std::string& backend) {
  // Escape the two characters that would break the label syntax.
  std::string out;
  out.reserve(backend.size());
  for (char c : backend) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return "{backend=\"" + out + "\"}";
}

void backend_line(std::ostream& os, const char* name,
                  const std::string& backend, double value) {
  os << name << label(backend) << ' ' << value << '\n';
}

void backend_line(std::ostream& os, const char* name,
                  const std::string& backend, long value) {
  os << name << label(backend) << ' ' << value << '\n';
}

void histogram_lines(std::ostream& os, const char* prefix,
                     const runtime::LatencyHistogram& h) {
  os << prefix << "_count " << h.count() << '\n';
  os << prefix << "_mean_seconds " << h.mean_seconds() << '\n';
  os << prefix << "_p99_seconds " << h.quantile(0.99) << '\n';
  os << prefix << "_max_seconds " << h.max_seconds() << '\n';
}

}  // namespace

std::string format_metrics(const runtime::RuntimeStats& s) {
  std::ostringstream os;
  os.precision(17);  // doubles round-trip through the text form too

  line(os, "postcard_slots_processed", static_cast<long>(s.slots_processed));
  line(os, "postcard_queue_depth", static_cast<long>(s.queue_depth));
  line(os, "postcard_ingress_submitted", s.submitted);
  line(os, "postcard_ingress_admitted", s.admitted);
  line(os, "postcard_ingress_rejected", s.ingress_rejected);
  line(os, "postcard_ingress_rejected_volume_gb", s.ingress_rejected_volume);
  line(os, "postcard_link_events", s.link_events);
  line(os, "postcard_solver_stalls_injected", s.solver_stalls);
  line(os, "postcard_solver_faults_injected", s.solver_faults);

  histogram_lines(os, "postcard_slot_latency", s.slot_latency);
  histogram_lines(os, "postcard_solve_latency", s.solve_latency);
  histogram_lines(os, "postcard_solve_latency_warm", s.solve_latency_warm);
  histogram_lines(os, "postcard_solve_latency_cold", s.solve_latency_cold);

  line(os, "postcard_server_sessions_opened", s.server.sessions_opened);
  line(os, "postcard_server_sessions_closed", s.server.sessions_closed);
  line(os, "postcard_server_frames_received", s.server.frames_received);
  line(os, "postcard_server_frames_sent", s.server.frames_sent);
  line(os, "postcard_server_submits", s.server.submits);
  line(os, "postcard_server_submit_admitted", s.server.submit_admitted);
  line(os, "postcard_server_backpressure_replies",
       s.server.backpressure_replies);
  line(os, "postcard_server_queries", s.server.queries);
  line(os, "postcard_server_protocol_errors", s.server.protocol_errors);
  line(os, "postcard_server_snapshots_written", s.server.snapshots_written);
  line(os, "postcard_server_slots_advanced", s.server.slots_advanced);
  line(os, "postcard_server_sessions_reaped", s.server.sessions_reaped);

  for (const runtime::BackendStats& b : s.backends) {
    backend_line(os, "postcard_backend_accepted_files", b.name,
                 b.accepted_files);
    backend_line(os, "postcard_backend_accepted_volume_gb", b.name,
                 b.accepted_volume);
    backend_line(os, "postcard_backend_rejected_files", b.name,
                 b.rejected_files);
    backend_line(os, "postcard_backend_rejected_volume_gb", b.name,
                 b.rejected_volume);
    backend_line(os, "postcard_backend_delivered_files", b.name,
                 b.delivered_files);
    backend_line(os, "postcard_backend_delivered_volume_gb", b.name,
                 b.delivered_volume);
    backend_line(os, "postcard_backend_replans", b.name, b.replans);
    backend_line(os, "postcard_backend_failed_files", b.name, b.failed_files);
    backend_line(os, "postcard_backend_failed_volume_gb", b.name,
                 b.failed_volume);
    backend_line(os, "postcard_backend_lp_solves", b.name,
                 static_cast<long>(b.lp_solves));
    backend_line(os, "postcard_backend_lp_iterations", b.name,
                 b.lp_iterations);
    backend_line(os, "postcard_backend_warm_accepts", b.name, b.warm_accepts);
    backend_line(os, "postcard_backend_cold_starts", b.name, b.cold_starts);
    const long starts = b.warm_accepts + b.cold_starts;
    backend_line(os, "postcard_backend_warm_accept_rate", b.name,
                 starts > 0 ? static_cast<double>(b.warm_accepts) /
                                  static_cast<double>(starts)
                            : 0.0);
    backend_line(os, "postcard_backend_pricing_seconds", b.name,
                 b.pricing_seconds);
    backend_line(os, "postcard_backend_master_seconds", b.name,
                 b.master_seconds);
    backend_line(os, "postcard_backend_resumed_solves", b.name,
                 b.resumed_solves);
    backend_line(os, "postcard_backend_dual_warm_attempts", b.name,
                 b.dual_warm_attempts);
    backend_line(os, "postcard_backend_dual_seed_columns", b.name,
                 b.dual_seed_columns);
    backend_line(os, "postcard_backend_charge_reduce_violations", b.name,
                 b.charge_reduce_violations);
    backend_line(os, "postcard_backend_rung_full_slots", b.name, b.rung_full);
    backend_line(os, "postcard_backend_rung_truncated_slots", b.name,
                 b.rung_truncated);
    backend_line(os, "postcard_backend_rung_greedy_slots", b.name,
                 b.rung_greedy);
    backend_line(os, "postcard_backend_rung_dcroute_files", b.name,
                 b.rung_dcroute);
    backend_line(os, "postcard_backend_carryover_files", b.name,
                 b.carryover_files);
    backend_line(os, "postcard_backend_degraded_slots", b.name,
                 b.degraded_slots);
    backend_line(os, "postcard_backend_degraded_cost_delta", b.name,
                 b.degraded_cost_delta);
    backend_line(os, "postcard_backend_solver_failures", b.name,
                 b.solver_failures);
    backend_line(os, "postcard_backend_audit_armed", b.name,
                 static_cast<long>(b.audit_armed ? 1 : 0));
    backend_line(os, "postcard_backend_audit_checks", b.name, b.audit_checks);
    backend_line(os, "postcard_backend_audit_violations", b.name,
                 b.audit_violations);
    backend_line(os, "postcard_backend_audit_seconds", b.name,
                 b.audit_seconds);
    if (!b.cost_series.empty()) {
      backend_line(os, "postcard_backend_cost_per_interval", b.name,
                   b.cost_series.back());
    }
  }
  return os.str();
}

}  // namespace postcard::server
