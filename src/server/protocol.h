// Message bodies of the controller protocol and their payload codecs.
//
// Each request/reply is a plain struct with an encode() into a ByteWriter
// and a decode() from a ByteReader; framing (version, type, length) lives
// in wire.h. Decoders are strict: they bounds-check every read, validate
// declared element counts against the remaining payload, and callers
// finish with ByteReader::require_done() so trailing garbage is rejected
// too. The low-level codecs for shared domain types (FileRequest,
// FilePlan, RuntimeStats, ...) are exposed here because the snapshot file
// format (snapshot.h) serializes the same types.
#pragma once

#include <string>
#include <vector>

#include "core/plan.h"
#include "net/file_request.h"
#include "runtime/event.h"
#include "runtime/stats.h"
#include "server/wire.h"

namespace postcard::server {

// --- Shared domain-type codecs ------------------------------------------

void encode_file_request(ByteWriter& w, const net::FileRequest& f);
net::FileRequest decode_file_request(ByteReader& r);

void encode_file_plan(ByteWriter& w, const core::FilePlan& p);
core::FilePlan decode_file_plan(ByteReader& r);

void encode_histogram(ByteWriter& w, const runtime::LatencyHistogram& h);
runtime::LatencyHistogram decode_histogram(ByteReader& r);

void encode_backend_stats(ByteWriter& w, const runtime::BackendStats& s);
runtime::BackendStats decode_backend_stats(ByteReader& r);

/// Full-fidelity RuntimeStats codec: every counter, all four histograms,
/// server counters, per-backend stats including cost series and audit
/// reports. Used by both the StatsReply frame and `--metrics-dump`.
void encode_runtime_stats(ByteWriter& w, const runtime::RuntimeStats& s);
runtime::RuntimeStats decode_runtime_stats(ByteReader& r);

/// Runtime-event codec, shared by the snapshot pending-event section and
/// the replication kReplEvents stream — one byte layout, so an event round
/// trips identically whether it travels in a PSNP file or on the wire.
void encode_event(ByteWriter& w, const runtime::Event& e);
runtime::Event decode_event(ByteReader& r);

// --- Requests ------------------------------------------------------------

struct SubmitFileRequest {
  net::FileRequest file;
  std::vector<std::uint8_t> encode() const;
  static SubmitFileRequest decode(const std::vector<std::uint8_t>& payload);
};

struct SubmitBatchRequest {
  std::vector<net::FileRequest> files;
  std::vector<std::uint8_t> encode() const;
  static SubmitBatchRequest decode(const std::vector<std::uint8_t>& payload);
};

struct QueryPlanRequest {
  int backend = 0;
  int file_id = 0;
  std::vector<std::uint8_t> encode() const;
  static QueryPlanRequest decode(const std::vector<std::uint8_t>& payload);
};

/// QueryStats and Shutdown carry empty payloads.

struct SnapshotRequest {
  std::string path;  // empty: use the server's configured snapshot path
  std::vector<std::uint8_t> encode() const;
  static SnapshotRequest decode(const std::vector<std::uint8_t>& payload);
};

struct AdvanceSlotRequest {
  int slots = 1;
  std::vector<std::uint8_t> encode() const;
  static AdvanceSlotRequest decode(const std::vector<std::uint8_t>& payload);
};

// --- Replies -------------------------------------------------------------

/// Verdict for one submitted file. When `admitted` is false the same body
/// travels as a kBackpressure frame (single submit) or a BatchReply entry,
/// with the admission controller's reason — backpressure is an explicit
/// answer, never a dropped connection.
struct SubmitVerdict {
  bool admitted = false;
  int slot = 0;  // release slot the file was scheduled into, if admitted
  std::string reason;
  // Dedup hit (RuntimeOptions::dedup_submissions): the id was already
  // admitted, nothing was re-enqueued. admitted stays true so a retrying
  // client treats the resubmission as success.
  bool duplicate = false;
};

struct SubmitReply {
  SubmitVerdict verdict;
  std::vector<std::uint8_t> encode() const;
  static SubmitReply decode(const std::vector<std::uint8_t>& payload);
};

struct BatchReply {
  std::vector<SubmitVerdict> verdicts;
  std::vector<std::uint8_t> encode() const;
  static BatchReply decode(const std::vector<std::uint8_t>& payload);
};

struct PlanReply {
  bool found = false;
  net::FileRequest request;
  core::FilePlan plan;
  std::vector<std::uint8_t> encode() const;
  static PlanReply decode(const std::vector<std::uint8_t>& payload);
};

struct StatsReply {
  runtime::RuntimeStats stats;
  std::vector<std::uint8_t> encode() const;
  static StatsReply decode(const std::vector<std::uint8_t>& payload);
};

struct SnapshotReply {
  bool ok = false;
  std::string message;  // written path, or the failure reason
  std::vector<std::uint8_t> encode() const;
  static SnapshotReply decode(const std::vector<std::uint8_t>& payload);
};

struct AdvanceReply {
  int next_slot = 0;  // slot clock after the ticks
  std::vector<std::uint8_t> encode() const;
  static AdvanceReply decode(const std::vector<std::uint8_t>& payload);
};

struct ErrorReply {
  std::string message;
  std::vector<std::uint8_t> encode() const;
  static ErrorReply decode(const std::vector<std::uint8_t>& payload);
};

}  // namespace postcard::server
