#include "server/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace postcard::server {

PostcardClient::PostcardClient(const std::string& host, int port,
                               std::size_t max_frame_bytes, int io_timeout_ms)
    : max_frame_bytes_(max_frame_bytes) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw WireError("socket() failed: errno " + std::to_string(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw WireError("invalid server address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw WireError("connect to " + host + ":" + std::to_string(port) +
                    " failed: errno " + std::to_string(err));
  }
  if (io_timeout_ms > 0) {
    struct timeval tv;
    tv.tv_sec = io_timeout_ms / 1000;
    tv.tv_usec = (io_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
}

PostcardClient::~PostcardClient() {
  if (fd_ >= 0) ::close(fd_);
}

Frame PostcardClient::roundtrip(MessageType request,
                                const std::vector<std::uint8_t>& payload,
                                MessageType expect, bool allow_backpressure) {
  write_frame(fd_, request, payload);
  Frame reply;
  if (!read_frame(fd_, &reply, max_frame_bytes_)) {
    throw WireError("server closed the connection before replying");
  }
  if (reply.type == MessageType::kError) {
    const ErrorReply err = ErrorReply::decode(reply.payload);
    throw WireError("server error: " + err.message);
  }
  if (reply.type != expect &&
      !(allow_backpressure && reply.type == MessageType::kBackpressure)) {
    throw WireError("unexpected reply type " +
                    std::to_string(static_cast<int>(reply.type)));
  }
  return reply;
}

SubmitVerdict PostcardClient::submit_file(const net::FileRequest& file) {
  SubmitFileRequest req;
  req.file = file;
  const Frame reply =
      roundtrip(MessageType::kSubmitFile, req.encode(),
                MessageType::kSubmitReply, /*allow_backpressure=*/true);
  return SubmitReply::decode(reply.payload).verdict;
}

std::vector<SubmitVerdict> PostcardClient::submit_batch(
    const std::vector<net::FileRequest>& files) {
  SubmitBatchRequest req;
  req.files = files;
  const Frame reply = roundtrip(MessageType::kSubmitBatch, req.encode(),
                                MessageType::kBatchReply);
  return BatchReply::decode(reply.payload).verdicts;
}

PlanReply PostcardClient::query_plan(int backend, int file_id) {
  QueryPlanRequest req;
  req.backend = backend;
  req.file_id = file_id;
  const Frame reply = roundtrip(MessageType::kQueryPlan, req.encode(),
                                MessageType::kPlanReply);
  return PlanReply::decode(reply.payload);
}

runtime::RuntimeStats PostcardClient::query_stats() {
  const Frame reply =
      roundtrip(MessageType::kQueryStats, {}, MessageType::kStatsReply);
  return StatsReply::decode(reply.payload).stats;
}

std::string PostcardClient::snapshot(const std::string& path) {
  SnapshotRequest req;
  req.path = path;
  const Frame reply = roundtrip(MessageType::kSnapshot, req.encode(),
                                MessageType::kSnapshotReply);
  const SnapshotReply out = SnapshotReply::decode(reply.payload);
  if (!out.ok) throw WireError("snapshot failed: " + out.message);
  return out.message;
}

int PostcardClient::advance(int slots) {
  AdvanceSlotRequest req;
  req.slots = slots;
  const Frame reply = roundtrip(MessageType::kAdvanceSlot, req.encode(),
                                MessageType::kAdvanceReply);
  return AdvanceReply::decode(reply.payload).next_slot;
}

void PostcardClient::shutdown() {
  roundtrip(MessageType::kShutdown, {}, MessageType::kShutdownReply);
}

}  // namespace postcard::server
