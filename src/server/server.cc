#include "server/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "server/protocol.h"
#include "server/snapshot.h"

namespace postcard::server {

namespace {

/// Sanity bound on one AdvanceSlot request; a session asking for more is
/// malforming, not planning.
constexpr int kMaxSlotsPerAdvance = 1 << 20;

}  // namespace

PostcardServer::PostcardServer(net::Topology topology, ServerOptions options)
    : options_(std::move(options)),
      runtime_(std::move(topology), options_.runtime) {}

PostcardServer::~PostcardServer() {
  if (started_.load(std::memory_order_acquire)) {
    request_shutdown();
    wait();
  }
}

int PostcardServer::add_postcard_backend(core::PostcardOptions options) {
  return runtime_.add_postcard_backend(std::move(options));
}

int PostcardServer::add_flow_backend(flow::FlowBaselineOptions options) {
  return runtime_.add_flow_backend(std::move(options));
}

void PostcardServer::restore_from(const std::string& snapshot_path) {
  runtime_.restore_snapshot(read_snapshot_file(snapshot_path));
}

void PostcardServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw WireError("socket() failed: errno " + std::to_string(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError("invalid listen address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError("bind to " + options_.host + ":" +
                    std::to_string(options_.port) + " failed: errno " +
                    std::to_string(err));
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError("listen failed: errno " + std::to_string(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  started_.store(true, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  driver_thread_ = std::thread([this] { driver_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void PostcardServer::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  cmd_cv_.notify_all();
}

void PostcardServer::close_listener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void PostcardServer::wait() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (driver_thread_.joinable()) driver_thread_.join();
  // shutdown() unblocks the accept loop (accept returns EINVAL on Linux);
  // the fd itself — and the listen_fd_ member the loop reads — is only
  // released after the accept thread joins, so no thread races the write.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  close_listener();
  {
    base::MutexLock lock(sessions_mu_);
    for (auto& s : sessions_) {
      // Unblock sessions parked in recv(); they observe EOF and exit.
      if (s->fd >= 0) ::shutdown(s->fd, SHUT_RD);
    }
  }
  for (;;) {
    std::unique_ptr<Session> victim;
    {
      base::MutexLock lock(sessions_mu_);
      if (sessions_.empty()) break;
      victim = std::move(sessions_.back());
      sessions_.pop_back();
    }
    if (victim->thread.joinable()) victim->thread.join();
    if (victim->fd >= 0) ::close(victim->fd);
  }
  running_.store(false, std::memory_order_release);
}

runtime::RuntimeStats PostcardServer::stats() const {
  runtime::RuntimeStats s = runtime_.stats();
  s.server.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  s.server.sessions_closed = sessions_closed_.load(std::memory_order_relaxed);
  s.server.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.server.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.server.submits = submits_.load(std::memory_order_relaxed);
  s.server.submit_admitted = submit_admitted_.load(std::memory_order_relaxed);
  s.server.backpressure_replies =
      backpressure_replies_.load(std::memory_order_relaxed);
  s.server.queries = queries_.load(std::memory_order_relaxed);
  s.server.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.server.snapshots_written =
      snapshots_written_.load(std::memory_order_relaxed);
  s.server.slots_advanced = slots_advanced_.load(std::memory_order_relaxed);
  s.server.sessions_reaped = sessions_reaped_.load(std::memory_order_relaxed);
  return s;
}

// --- Accept + session side ------------------------------------------------

void PostcardServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed during shutdown, or fatal — stop accepting
    }
    if (shutdown_requested_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    if (options_.session_idle_timeout_ms > 0) {
      // Arm the idle reaper: recv() on this session returns EAGAIN after
      // the deadline, which read_exact maps to WireTimeout.
      struct timeval tv;
      tv.tv_sec = options_.session_idle_timeout_ms / 1000;
      tv.tv_usec = (options_.session_idle_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    }
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    {
      base::MutexLock lock(sessions_mu_);
      // Reap finished sessions so a long-lived server with churning
      // clients does not accumulate dead threads.
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->finished.load(std::memory_order_acquire)) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          if ((*it)->fd >= 0) ::close((*it)->fd);
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw] { session_loop(raw); });
  }
}

void PostcardServer::session_loop(Session* session) {
  const int fd = session->fd;
  try {
    Frame frame;
    while (read_frame(fd, &frame, options_.max_frame_bytes)) {
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      if (!handle_frame(fd, frame)) break;
    }
  } catch (const WireTimeout&) {
    // Idle-session reaper: the peer sent nothing (or stalled mid-frame)
    // for session_idle_timeout_ms. Not a protocol violation — close
    // quietly without an Error frame and free the thread.
    sessions_reaped_.fetch_add(1, std::memory_order_relaxed);
  } catch (const WireError& e) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    std::cerr << "postcard_server: closing session: " << e.what() << "\n";
    try {
      reply(fd, MessageType::kError, ErrorReply{e.what()}.encode());
    } catch (const WireError&) {
      // Socket already dead; the close below is all that is left.
    }
  }
  // Signal EOF to the peer now; the fd itself is closed by the accept
  // loop's reaper or by wait(), after this thread is joined.
  ::shutdown(fd, SHUT_RDWR);
  sessions_closed_.fetch_add(1, std::memory_order_relaxed);
  session->finished.store(true, std::memory_order_release);
}

void PostcardServer::reply(int fd, MessageType type,
                           const std::vector<std::uint8_t>& payload) {
  write_frame(fd, type, payload);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
}

bool PostcardServer::handle_frame(int fd, const Frame& frame) {
  switch (frame.type) {
    case MessageType::kSubmitFile: {
      const SubmitFileRequest req = SubmitFileRequest::decode(frame.payload);
      submits_.fetch_add(1, std::memory_order_relaxed);
      const runtime::AdmissionResult result =
          runtime_.ingress().submit(req.file);
      SubmitReply out;
      out.verdict.admitted = result.admitted;
      out.verdict.slot = result.slot;
      out.verdict.reason = result.reason;
      out.verdict.duplicate = result.duplicate;
      if (result.admitted) {
        // A dedup hit is acknowledged as success but is not a fresh
        // admission — submit_admitted counts files entering the system.
        if (!result.duplicate) {
          submit_admitted_.fetch_add(1, std::memory_order_relaxed);
        }
        reply(fd, MessageType::kSubmitReply, out.encode());
      } else {
        backpressure_replies_.fetch_add(1, std::memory_order_relaxed);
        reply(fd, MessageType::kBackpressure, out.encode());
      }
      return true;
    }
    case MessageType::kSubmitBatch: {
      const SubmitBatchRequest req = SubmitBatchRequest::decode(frame.payload);
      if (req.files.size() > options_.max_batch_files) {
        throw WireError("batch of " + std::to_string(req.files.size()) +
                        " files exceeds limit of " +
                        std::to_string(options_.max_batch_files));
      }
      BatchReply out;
      out.verdicts.reserve(req.files.size());
      for (const net::FileRequest& file : req.files) {
        submits_.fetch_add(1, std::memory_order_relaxed);
        const runtime::AdmissionResult result =
            runtime_.ingress().submit(file);
        SubmitVerdict v;
        v.admitted = result.admitted;
        v.slot = result.slot;
        v.reason = result.reason;
        v.duplicate = result.duplicate;
        if (result.admitted) {
          if (!result.duplicate) {
            submit_admitted_.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          backpressure_replies_.fetch_add(1, std::memory_order_relaxed);
        }
        out.verdicts.push_back(std::move(v));
      }
      reply(fd, MessageType::kBatchReply, out.encode());
      return true;
    }
    case MessageType::kQueryPlan: {
      const QueryPlanRequest req = QueryPlanRequest::decode(frame.payload);
      queries_.fetch_add(1, std::memory_order_relaxed);
      PlanReply out;
      out.found =
          runtime_.query_plan(req.backend, req.file_id, &out.plan, &out.request);
      reply(fd, MessageType::kPlanReply, out.encode());
      return true;
    }
    case MessageType::kQueryStats: {
      ByteReader r(frame.payload);
      r.require_done();
      queries_.fetch_add(1, std::memory_order_relaxed);
      StatsReply out;
      out.stats = stats();
      reply(fd, MessageType::kStatsReply, out.encode());
      return true;
    }
    case MessageType::kSnapshot: {
      const SnapshotRequest req = SnapshotRequest::decode(frame.payload);
      const std::string target =
          req.path.empty() ? options_.snapshot_path : req.path;
      SnapshotReply out;
      if (target.empty()) {
        out.ok = false;
        out.message = "no snapshot path configured and none requested";
      } else {
        const std::string err =
            enqueue_command(Command::Kind::kSnapshot, 0, target);
        out.ok = err.empty();
        out.message = err.empty() ? target : err;
      }
      reply(fd, MessageType::kSnapshotReply, out.encode());
      return true;
    }
    case MessageType::kAdvanceSlot: {
      const AdvanceSlotRequest req = AdvanceSlotRequest::decode(frame.payload);
      if (req.slots < 1 || req.slots > kMaxSlotsPerAdvance) {
        throw WireError("AdvanceSlot count " + std::to_string(req.slots) +
                        " outside [1, " + std::to_string(kMaxSlotsPerAdvance) +
                        "]");
      }
      const std::string err =
          enqueue_command(Command::Kind::kAdvance, req.slots, "");
      if (!err.empty()) {
        reply(fd, MessageType::kError, ErrorReply{err}.encode());
        return true;
      }
      AdvanceReply out;
      out.next_slot = runtime_.current_slot();
      reply(fd, MessageType::kAdvanceReply, out.encode());
      return true;
    }
    case MessageType::kShutdown: {
      ByteReader r(frame.payload);
      r.require_done();
      // The promise resolves only after the drain (final snapshot written,
      // in-flight work retired), so the reply certifies a completed drain.
      enqueue_command(Command::Kind::kShutdown, 0, "");
      reply(fd, MessageType::kShutdownReply, {});
      return false;
    }
    default:
      throw WireError("unknown or unexpected message type " +
                      std::to_string(static_cast<int>(frame.type)));
  }
}

std::string PostcardServer::enqueue_command(Command::Kind kind, int slots,
                                            const std::string& path) {
  std::future<std::string> done;
  {
    base::MutexLock lock(cmd_mu_);
    if (drained_.load(std::memory_order_acquire)) {
      return "server is shutting down";
    }
    Command cmd;
    cmd.kind = kind;
    cmd.slots = slots;
    cmd.path = path;
    done = cmd.done.get_future();
    commands_.push_back(std::move(cmd));
  }
  cmd_cv_.notify_all();
  return done.get();
}

// --- Driver side ----------------------------------------------------------

std::string PostcardServer::write_snapshot(const std::string& path) {
  try {
    write_snapshot_file(path, runtime_.capture_snapshot());
  } catch (const std::exception& e) {
    return e.what();
  }
  snapshots_written_.fetch_add(1, std::memory_order_relaxed);
  return "";
}

std::string PostcardServer::run_command(Command& cmd) {
  switch (cmd.kind) {
    case Command::Kind::kAdvance:
      try {
        for (int i = 0; i < cmd.slots; ++i) {
          runtime_.tick();
          slots_advanced_.fetch_add(1, std::memory_order_relaxed);
          // Replication: ship the committed slot (events + fingerprint)
          // at exactly the commit boundary, before anything else can
          // interleave with the next tick.
          if (post_tick_hook_) post_tick_hook_(runtime_.current_slot() - 1);
          if (options_.snapshot_every_slots > 0 &&
              !options_.snapshot_path.empty() &&
              runtime_.current_slot() % options_.snapshot_every_slots == 0) {
            const std::string err = write_snapshot(options_.snapshot_path);
            if (!err.empty()) {
              std::cerr << "postcard_server: periodic snapshot failed: " << err
                        << "\n";
            }
          }
        }
      } catch (const std::exception& e) {
        return std::string("tick failed: ") + e.what();
      }
      return "";
    case Command::Kind::kSnapshot:
      return write_snapshot(cmd.path);
    case Command::Kind::kShutdown:
      shutdown_requested_.store(true, std::memory_order_release);
      return "";
  }
  return "unreachable";
}

void PostcardServer::driver_loop() NO_THREAD_SAFETY_ANALYSIS {
  using Clock = std::chrono::steady_clock;
  Clock::time_point next_auto_tick = Clock::now();
  if (options_.slot_every_ms > 0) {
    next_auto_tick += std::chrono::milliseconds(options_.slot_every_ms);
  }
  // Shutdown commands drained before the drain completes: their promises
  // resolve only once the final snapshot and flush are done.
  std::vector<std::promise<std::string>> shutdown_promises;

  for (;;) {
    Command cmd;
    bool have_cmd = false;
    {
      std::unique_lock<std::mutex> lock(cmd_mu_.native());
      const auto wake = [this] {
        return !commands_.empty() ||
               shutdown_requested_.load(std::memory_order_acquire);
      };
      if (options_.slot_every_ms > 0) {
        cmd_cv_.wait_until(lock, next_auto_tick, wake);
      } else {
        cmd_cv_.wait_for(lock, std::chrono::milliseconds(50), wake);
      }
      if (!commands_.empty()) {
        cmd = std::move(commands_.front());
        commands_.pop_front();
        have_cmd = true;
      }
    }

    if (have_cmd) {
      if (cmd.kind == Command::Kind::kShutdown) {
        run_command(cmd);  // sets shutdown_requested_
        shutdown_promises.push_back(std::move(cmd.done));
      } else {
        cmd.done.set_value(run_command(cmd));
      }
      continue;  // drain queued commands before sleeping again
    }

    if (shutdown_requested_.load(std::memory_order_acquire)) break;

    if (options_.slot_every_ms > 0 && Clock::now() >= next_auto_tick) {
      Command auto_tick;
      auto_tick.kind = Command::Kind::kAdvance;
      auto_tick.slots = 1;
      const std::string err = run_command(auto_tick);
      if (!err.empty()) {
        std::cerr << "postcard_server: auto tick failed: " << err << "\n";
      }
      next_auto_tick = Clock::now() +
                       std::chrono::milliseconds(options_.slot_every_ms);
    }
  }

  // Graceful drain: final snapshot first (it must capture the in-flight
  // ledger as the restart will see it), then retire in-flight work into
  // the delivery stats for the final QueryStats/metrics readers.
  if (!options_.snapshot_path.empty()) {
    const std::string err = write_snapshot(options_.snapshot_path);
    if (!err.empty()) {
      std::cerr << "postcard_server: final snapshot failed: " << err << "\n";
    }
  }
  runtime_.flush_in_flight();
  drained_.store(true, std::memory_order_release);

  for (std::promise<std::string>& p : shutdown_promises) p.set_value("");
  // Fail whatever raced in after the drain decision; their sessions get a
  // truthful error instead of hanging on a promise nobody will fulfil.
  std::deque<Command> leftover;
  {
    base::MutexLock lock(cmd_mu_);
    leftover.swap(commands_);
  }
  for (Command& c : leftover) c.done.set_value("server is shutting down");
}

}  // namespace postcard::server
