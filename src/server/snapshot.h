// Versioned on-disk snapshot format for ControllerRuntime state.
//
// Layout:
//
//   u32 magic     "PSNP" (0x50534E50)
//   u32 version   kSnapshotVersion — readers reject anything newer;
//                 compatibility rules are spelled out in DESIGN.md §11
//   u64 body_len  bytes of body
//   ...body...    RuntimeSnapshot, serialized with the strict codecs
//   u64 checksum  FNV-1a 64 over magic..body (everything before the trailer)
//
// All scalars little-endian; doubles as IEEE-754 bit patterns, so a
// restored charge ledger carries the exact values the live engine held —
// the basis of the bit-for-bit cost-series guarantee tested in
// tests/server. write_snapshot_file() stages to `<path>.tmp`, fsyncs, then
// atomically renames over the target: a crash or abrupt kill mid-write
// leaves either the previous complete snapshot or a stray .tmp, never a
// torn file. read_snapshot_file() re-verifies magic, version, length and
// checksum and throws WireError on any mismatch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/snapshot_state.h"
#include "server/wire.h"

namespace postcard::server {

inline constexpr std::uint32_t kSnapshotMagic = 0x50534E50;  // "PSNP"
// v4: idempotent-submission dedup ids + event-seq watermark (replication).
inline constexpr std::uint32_t kSnapshotVersion = 4;

/// FNV-1a 64-bit over a byte range.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n);

/// Serializes a snapshot into the full file image (header + body +
/// checksum trailer).
std::vector<std::uint8_t> encode_snapshot(const runtime::RuntimeSnapshot& snap);

/// Parses and validates a full file image. Throws WireError on a bad
/// magic, unsupported version, length mismatch, checksum mismatch, or any
/// malformed body field.
runtime::RuntimeSnapshot decode_snapshot(const std::vector<std::uint8_t>& bytes);

/// Atomically replaces `path` with the serialized snapshot
/// (write to path.tmp, fsync, rename). Throws WireError on I/O failure.
void write_snapshot_file(const std::string& path,
                         const runtime::RuntimeSnapshot& snap);

/// Reads and validates a snapshot file. Throws WireError when the file is
/// missing, truncated, tampered with, or from an unsupported version.
runtime::RuntimeSnapshot read_snapshot_file(const std::string& path);

}  // namespace postcard::server
