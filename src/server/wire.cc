#include "server/wire.h"

#include <cerrno>
#include <chrono>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace postcard::server {

std::vector<std::uint8_t> encode_frame(
    MessageType type, const std::vector<std::uint8_t>& payload) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.raw(payload.data(), payload.size());
  return w.take();
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF on a frame boundary
      throw WireError("connection closed mid-frame (" + std::to_string(got) +
                      " of " + std::to_string(n) + " bytes)");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired. At got == 0 the peer is merely idle; mid-read
      // it stalled inside a frame (half-open or wedged).
      throw WireTimeout("recv deadline expired after " + std::to_string(got) +
                            " of " + std::to_string(n) + " bytes",
                        /*at_frame_boundary=*/got == 0);
    }
    throw WireError("recv failed: errno " + std::to_string(errno));
  }
  return true;
}

void write_all(int fd, const std::uint8_t* data, std::size_t n,
               int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms < 0 ? 0
                                                                 : timeout_ms);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r > 0) {
      sent += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      // send() returning 0 for n > 0 should not happen on a socket; treat
      // it as a dead peer rather than spinning or reading stale errno.
      throw WireError("send returned 0 (" + std::to_string(sent) + " of " +
                      std::to_string(n) + " bytes)");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Socket buffer full (non-blocking fd, SO_SNDTIMEO, or a peer that
      // stopped draining). With no deadline keep blocking via poll; with
      // one, wait only for the time remaining.
      int wait_ms = -1;
      if (timeout_ms >= 0) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now());
        if (left.count() <= 0) {
          throw WireTimeout("send deadline expired after " +
                                std::to_string(sent) + " of " +
                                std::to_string(n) + " bytes",
                            /*at_frame_boundary=*/sent == 0);
        }
        wait_ms = static_cast<int>(left.count());
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      const int p = ::poll(&pfd, 1, wait_ms);
      if (p < 0 && errno != EINTR) {
        throw WireError("poll failed: errno " + std::to_string(errno));
      }
      if (p == 0 && timeout_ms >= 0) {
        throw WireTimeout("send deadline expired after " +
                              std::to_string(sent) + " of " +
                              std::to_string(n) + " bytes",
                          /*at_frame_boundary=*/sent == 0);
      }
      continue;
    }
    throw WireError("send failed: errno " + std::to_string(errno));
  }
}

bool read_frame(int fd, Frame* out, std::size_t max_frame_bytes) {
  std::uint8_t header[8];
  if (!read_exact(fd, header, sizeof(header))) return false;
  ByteReader r(header, sizeof(header));
  const std::uint32_t payload_len = r.u32();
  const std::uint16_t version = r.u16();
  const std::uint16_t type = r.u16();
  r.require_done();  // the three reads must consume the header exactly
  if (version != kProtocolVersion) {
    throw WireError("protocol version " + std::to_string(version) +
                    " unsupported (expected " +
                    std::to_string(kProtocolVersion) + ")");
  }
  if (payload_len > max_frame_bytes) {
    throw WireError("declared payload of " + std::to_string(payload_len) +
                    " bytes exceeds frame limit of " +
                    std::to_string(max_frame_bytes));
  }
  out->type = static_cast<MessageType>(type);
  out->payload.assign(payload_len, 0);
  if (payload_len > 0 && !read_exact(fd, out->payload.data(), payload_len)) {
    throw WireError("connection closed before " + std::to_string(payload_len) +
                    "-byte payload arrived");
  }
  return true;
}

void write_frame(int fd, MessageType type,
                 const std::vector<std::uint8_t>& payload, int timeout_ms) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  write_all(fd, frame.data(), frame.size(), timeout_ms);
}

}  // namespace postcard::server
