#include "server/protocol.h"

namespace postcard::server {

namespace {

// Conservative per-element minimum sizes for ByteReader::length checks.
constexpr std::size_t kFileRequestBytes = 4 * 4 + 8;  // 4 ints + 1 double
constexpr std::size_t kTransferBytes = 4 * 4 + 8;
// flag, slot, empty str, duplicate flag
constexpr std::size_t kVerdictMinBytes = 1 + 4 + 4 + 1;

template <typename Struct, typename DecodeBody>
Struct decode_payload(const std::vector<std::uint8_t>& payload,
                      DecodeBody&& body) {
  ByteReader r(payload);
  Struct out = body(r);
  r.require_done();
  return out;
}

void encode_verdict(ByteWriter& w, const SubmitVerdict& v) {
  w.boolean(v.admitted);
  w.i32(v.slot);
  w.str(v.reason);
  w.boolean(v.duplicate);
}

SubmitVerdict decode_verdict(ByteReader& r) {
  SubmitVerdict v;
  v.admitted = r.boolean();
  v.slot = r.i32();
  v.reason = r.str();
  v.duplicate = r.boolean();
  return v;
}

// Event payload discriminants, shared by the snapshot file and the
// replication stream. Kept independent of the std::variant index so
// reordering EventPayload alternatives cannot silently change the format.
enum class EventTag : std::uint8_t {
  kLinkDown = 0,
  kLinkUp = 1,
  kCapacityChange = 2,
  kFileArrival = 3,
  kSlotTick = 4,
  kSolverStall = 5,
  kSolverFault = 6,
};

}  // namespace

// --- Shared domain-type codecs ------------------------------------------

void encode_file_request(ByteWriter& w, const net::FileRequest& f) {
  w.i32(f.id);
  w.i32(f.source);
  w.i32(f.destination);
  w.f64(f.size);
  w.i32(f.max_transfer_slots);
  w.i32(f.release_slot);
}

net::FileRequest decode_file_request(ByteReader& r) {
  net::FileRequest f;
  f.id = r.i32();
  f.source = r.i32();
  f.destination = r.i32();
  f.size = r.f64();
  f.max_transfer_slots = r.i32();
  f.release_slot = r.i32();
  return f;
}

void encode_file_plan(ByteWriter& w, const core::FilePlan& p) {
  w.i32(p.file_id);
  w.u32(static_cast<std::uint32_t>(p.transfers.size()));
  for (const core::Transfer& t : p.transfers) {
    w.i32(t.slot);
    w.i32(t.from);
    w.i32(t.to);
    w.f64(t.volume);
    w.i32(t.link);
  }
}

core::FilePlan decode_file_plan(ByteReader& r) {
  core::FilePlan p;
  p.file_id = r.i32();
  const std::size_t n = r.length(kTransferBytes);
  p.transfers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::Transfer t;
    t.slot = r.i32();
    t.from = r.i32();
    t.to = r.i32();
    t.volume = r.f64();
    t.link = r.i32();
    p.transfers.push_back(t);
  }
  return p;
}

void encode_histogram(ByteWriter& w, const runtime::LatencyHistogram& h) {
  for (std::int64_t b : h.buckets()) w.i64(b);
  w.i64(h.count());
  w.f64(h.total_seconds());
  w.f64(h.max_seconds());
}

runtime::LatencyHistogram decode_histogram(ByteReader& r) {
  std::array<std::int64_t, runtime::LatencyHistogram::kBuckets> buckets{};
  for (std::int64_t& b : buckets) b = r.i64();
  const std::int64_t count = r.i64();
  const double total = r.f64();
  const double max = r.f64();
  return runtime::LatencyHistogram::restore(buckets, count, total, max);
}

void encode_backend_stats(ByteWriter& w, const runtime::BackendStats& s) {
  w.str(s.name);
  w.i64(s.accepted_files);
  w.f64(s.accepted_volume);
  w.i64(s.rejected_files);
  w.f64(s.rejected_volume);
  w.i64(s.delivered_files);
  w.f64(s.delivered_volume);
  w.i64(s.replans);
  w.f64(s.replanned_volume);
  w.i64(s.failed_files);
  w.f64(s.failed_volume);
  w.i64(s.conflict_resolves);
  w.i64(s.lp_iterations);
  w.i32(s.lp_solves);
  w.i64(s.warm_accepts);
  w.i64(s.cold_starts);
  w.f64(s.pricing_seconds);
  w.f64(s.master_seconds);
  w.i64(s.resumed_solves);
  w.i64(s.dual_warm_attempts);
  w.i64(s.dual_seed_columns);
  w.i64(s.charge_reduce_violations);
  w.i64(s.rung_full);
  w.i64(s.rung_truncated);
  w.i64(s.rung_greedy);
  w.i64(s.rung_dcroute);
  w.i64(s.carryover_files);
  w.f64(s.carryover_volume);
  w.i64(s.carryover_entered_files);
  w.f64(s.carryover_entered_volume);
  w.i64(s.degraded_slots);
  w.f64(s.degraded_cost_delta);
  w.i64(s.solver_failures);
  w.str(s.last_solver_status);
  w.i64(s.gave_up_files);
  w.f64(s.gave_up_volume);
  w.boolean(s.audit_armed);
  w.i64(s.audit_checks);
  w.i64(s.audit_violations);
  w.f64(s.audit_seconds);
  w.u32(static_cast<std::uint32_t>(s.audit_reports.size()));
  for (const std::string& report : s.audit_reports) w.str(report);
  w.u32(static_cast<std::uint32_t>(s.cost_series.size()));
  for (double c : s.cost_series) w.f64(c);
}

runtime::BackendStats decode_backend_stats(ByteReader& r) {
  runtime::BackendStats s;
  s.name = r.str();
  s.accepted_files = r.i64();
  s.accepted_volume = r.f64();
  s.rejected_files = r.i64();
  s.rejected_volume = r.f64();
  s.delivered_files = r.i64();
  s.delivered_volume = r.f64();
  s.replans = r.i64();
  s.replanned_volume = r.f64();
  s.failed_files = r.i64();
  s.failed_volume = r.f64();
  s.conflict_resolves = r.i64();
  s.lp_iterations = r.i64();
  s.lp_solves = r.i32();
  s.warm_accepts = r.i64();
  s.cold_starts = r.i64();
  s.pricing_seconds = r.f64();
  s.master_seconds = r.f64();
  s.resumed_solves = r.i64();
  s.dual_warm_attempts = r.i64();
  s.dual_seed_columns = r.i64();
  s.charge_reduce_violations = r.i64();
  s.rung_full = r.i64();
  s.rung_truncated = r.i64();
  s.rung_greedy = r.i64();
  s.rung_dcroute = r.i64();
  s.carryover_files = r.i64();
  s.carryover_volume = r.f64();
  s.carryover_entered_files = r.i64();
  s.carryover_entered_volume = r.f64();
  s.degraded_slots = r.i64();
  s.degraded_cost_delta = r.f64();
  s.solver_failures = r.i64();
  s.last_solver_status = r.str();
  s.gave_up_files = r.i64();
  s.gave_up_volume = r.f64();
  s.audit_armed = r.boolean();
  s.audit_checks = r.i64();
  s.audit_violations = r.i64();
  s.audit_seconds = r.f64();
  const std::size_t reports = r.length(4);
  s.audit_reports.reserve(reports);
  for (std::size_t i = 0; i < reports; ++i) s.audit_reports.push_back(r.str());
  const std::size_t costs = r.length(8);
  s.cost_series.reserve(costs);
  for (std::size_t i = 0; i < costs; ++i) s.cost_series.push_back(r.f64());
  return s;
}

void encode_runtime_stats(ByteWriter& w, const runtime::RuntimeStats& s) {
  w.i32(s.slots_processed);
  w.u64(static_cast<std::uint64_t>(s.queue_depth));
  w.i64(s.submitted);
  w.i64(s.admitted);
  w.i64(s.ingress_rejected);
  w.f64(s.ingress_rejected_volume);
  w.i64(s.link_events);
  w.i64(s.solver_stalls);
  w.i64(s.solver_faults);
  encode_histogram(w, s.slot_latency);
  encode_histogram(w, s.solve_latency);
  encode_histogram(w, s.solve_latency_warm);
  encode_histogram(w, s.solve_latency_cold);
  w.i64(s.server.sessions_opened);
  w.i64(s.server.sessions_closed);
  w.i64(s.server.frames_received);
  w.i64(s.server.frames_sent);
  w.i64(s.server.submits);
  w.i64(s.server.submit_admitted);
  w.i64(s.server.backpressure_replies);
  w.i64(s.server.queries);
  w.i64(s.server.protocol_errors);
  w.i64(s.server.snapshots_written);
  w.i64(s.server.slots_advanced);
  w.i64(s.server.sessions_reaped);
  w.u32(static_cast<std::uint32_t>(s.backends.size()));
  for (const runtime::BackendStats& b : s.backends) encode_backend_stats(w, b);
}

void encode_event(ByteWriter& w, const runtime::Event& e) {
  w.i32(e.slot);
  w.u64(e.seq);
  if (const auto* d = std::get_if<runtime::LinkDown>(&e.payload)) {
    w.u8(static_cast<std::uint8_t>(EventTag::kLinkDown));
    w.i32(d->link);
  } else if (const auto* u = std::get_if<runtime::LinkUp>(&e.payload)) {
    w.u8(static_cast<std::uint8_t>(EventTag::kLinkUp));
    w.i32(u->link);
  } else if (const auto* c =
                 std::get_if<runtime::CapacityChange>(&e.payload)) {
    w.u8(static_cast<std::uint8_t>(EventTag::kCapacityChange));
    w.i32(c->link);
    w.f64(c->capacity);
  } else if (const auto* a = std::get_if<runtime::FileArrival>(&e.payload)) {
    w.u8(static_cast<std::uint8_t>(EventTag::kFileArrival));
    encode_file_request(w, a->file);
  } else if (const auto* t = std::get_if<runtime::SlotTick>(&e.payload)) {
    w.u8(static_cast<std::uint8_t>(EventTag::kSlotTick));
    w.i32(t->slot);
  } else if (const auto* s = std::get_if<runtime::SolverStall>(&e.payload)) {
    w.u8(static_cast<std::uint8_t>(EventTag::kSolverStall));
    w.i32(s->backend);
    w.i64(s->pivot_budget);
  } else if (const auto* f = std::get_if<runtime::SolverFault>(&e.payload)) {
    w.u8(static_cast<std::uint8_t>(EventTag::kSolverFault));
    w.i32(f->backend);
    w.i32(f->disable_rungs);
  } else {
    throw WireError("unknown event payload variant");
  }
}

runtime::Event decode_event(ByteReader& r) {
  runtime::Event e;
  e.slot = r.i32();
  e.seq = r.u64();
  const auto tag = static_cast<EventTag>(r.u8());
  switch (tag) {
    case EventTag::kLinkDown:
      e.payload = runtime::LinkDown{r.i32()};
      break;
    case EventTag::kLinkUp:
      e.payload = runtime::LinkUp{r.i32()};
      break;
    case EventTag::kCapacityChange: {
      runtime::CapacityChange c;
      c.link = r.i32();
      c.capacity = r.f64();
      e.payload = c;
      break;
    }
    case EventTag::kFileArrival:
      e.payload = runtime::FileArrival{decode_file_request(r)};
      break;
    case EventTag::kSlotTick:
      e.payload = runtime::SlotTick{r.i32()};
      break;
    case EventTag::kSolverStall: {
      runtime::SolverStall s;
      s.backend = r.i32();
      s.pivot_budget = r.i64();
      e.payload = s;
      break;
    }
    case EventTag::kSolverFault: {
      runtime::SolverFault f;
      f.backend = r.i32();
      f.disable_rungs = r.i32();
      e.payload = f;
      break;
    }
    default:
      throw WireError("unknown event tag " +
                      std::to_string(static_cast<int>(tag)));
  }
  return e;
}

runtime::RuntimeStats decode_runtime_stats(ByteReader& r) {
  runtime::RuntimeStats s;
  s.slots_processed = r.i32();
  s.queue_depth = static_cast<std::size_t>(r.u64());
  s.submitted = r.i64();
  s.admitted = r.i64();
  s.ingress_rejected = r.i64();
  s.ingress_rejected_volume = r.f64();
  s.link_events = r.i64();
  s.solver_stalls = r.i64();
  s.solver_faults = r.i64();
  s.slot_latency = decode_histogram(r);
  s.solve_latency = decode_histogram(r);
  s.solve_latency_warm = decode_histogram(r);
  s.solve_latency_cold = decode_histogram(r);
  s.server.sessions_opened = r.i64();
  s.server.sessions_closed = r.i64();
  s.server.frames_received = r.i64();
  s.server.frames_sent = r.i64();
  s.server.submits = r.i64();
  s.server.submit_admitted = r.i64();
  s.server.backpressure_replies = r.i64();
  s.server.queries = r.i64();
  s.server.protocol_errors = r.i64();
  s.server.snapshots_written = r.i64();
  s.server.slots_advanced = r.i64();
  s.server.sessions_reaped = r.i64();
  const std::size_t backends = r.length(4);
  s.backends.reserve(backends);
  for (std::size_t i = 0; i < backends; ++i) {
    s.backends.push_back(decode_backend_stats(r));
  }
  return s;
}

// --- Requests ------------------------------------------------------------

std::vector<std::uint8_t> SubmitFileRequest::encode() const {
  ByteWriter w;
  encode_file_request(w, file);
  return w.take();
}

SubmitFileRequest SubmitFileRequest::decode(
    const std::vector<std::uint8_t>& payload) {
  return decode_payload<SubmitFileRequest>(payload, [](ByteReader& r) {
    return SubmitFileRequest{decode_file_request(r)};
  });
}

std::vector<std::uint8_t> SubmitBatchRequest::encode() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(files.size()));
  for (const net::FileRequest& f : files) encode_file_request(w, f);
  return w.take();
}

SubmitBatchRequest SubmitBatchRequest::decode(
    const std::vector<std::uint8_t>& payload) {
  return decode_payload<SubmitBatchRequest>(payload, [](ByteReader& r) {
    SubmitBatchRequest req;
    const std::size_t n = r.length(kFileRequestBytes);
    req.files.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      req.files.push_back(decode_file_request(r));
    }
    return req;
  });
}

std::vector<std::uint8_t> QueryPlanRequest::encode() const {
  ByteWriter w;
  w.i32(backend);
  w.i32(file_id);
  return w.take();
}

QueryPlanRequest QueryPlanRequest::decode(
    const std::vector<std::uint8_t>& payload) {
  return decode_payload<QueryPlanRequest>(payload, [](ByteReader& r) {
    QueryPlanRequest req;
    req.backend = r.i32();
    req.file_id = r.i32();
    return req;
  });
}

std::vector<std::uint8_t> SnapshotRequest::encode() const {
  ByteWriter w;
  w.str(path);
  return w.take();
}

SnapshotRequest SnapshotRequest::decode(
    const std::vector<std::uint8_t>& payload) {
  return decode_payload<SnapshotRequest>(payload, [](ByteReader& r) {
    return SnapshotRequest{r.str()};
  });
}

std::vector<std::uint8_t> AdvanceSlotRequest::encode() const {
  ByteWriter w;
  w.i32(slots);
  return w.take();
}

AdvanceSlotRequest AdvanceSlotRequest::decode(
    const std::vector<std::uint8_t>& payload) {
  return decode_payload<AdvanceSlotRequest>(payload, [](ByteReader& r) {
    return AdvanceSlotRequest{r.i32()};
  });
}

// --- Replies -------------------------------------------------------------

std::vector<std::uint8_t> SubmitReply::encode() const {
  ByteWriter w;
  encode_verdict(w, verdict);
  return w.take();
}

SubmitReply SubmitReply::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<SubmitReply>(payload, [](ByteReader& r) {
    return SubmitReply{decode_verdict(r)};
  });
}

std::vector<std::uint8_t> BatchReply::encode() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(verdicts.size()));
  for (const SubmitVerdict& v : verdicts) encode_verdict(w, v);
  return w.take();
}

BatchReply BatchReply::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<BatchReply>(payload, [](ByteReader& r) {
    BatchReply reply;
    const std::size_t n = r.length(kVerdictMinBytes);
    reply.verdicts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      reply.verdicts.push_back(decode_verdict(r));
    }
    return reply;
  });
}

std::vector<std::uint8_t> PlanReply::encode() const {
  ByteWriter w;
  w.boolean(found);
  encode_file_request(w, request);
  encode_file_plan(w, plan);
  return w.take();
}

PlanReply PlanReply::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<PlanReply>(payload, [](ByteReader& r) {
    PlanReply reply;
    reply.found = r.boolean();
    reply.request = decode_file_request(r);
    reply.plan = decode_file_plan(r);
    return reply;
  });
}

std::vector<std::uint8_t> StatsReply::encode() const {
  ByteWriter w;
  encode_runtime_stats(w, stats);
  return w.take();
}

StatsReply StatsReply::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<StatsReply>(payload, [](ByteReader& r) {
    return StatsReply{decode_runtime_stats(r)};
  });
}

std::vector<std::uint8_t> SnapshotReply::encode() const {
  ByteWriter w;
  w.boolean(ok);
  w.str(message);
  return w.take();
}

SnapshotReply SnapshotReply::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<SnapshotReply>(payload, [](ByteReader& r) {
    SnapshotReply reply;
    reply.ok = r.boolean();
    reply.message = r.str();
    return reply;
  });
}

std::vector<std::uint8_t> AdvanceReply::encode() const {
  ByteWriter w;
  w.i32(next_slot);
  return w.take();
}

AdvanceReply AdvanceReply::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<AdvanceReply>(payload, [](ByteReader& r) {
    return AdvanceReply{r.i32()};
  });
}

std::vector<std::uint8_t> ErrorReply::encode() const {
  ByteWriter w;
  w.str(message);
  return w.take();
}

ErrorReply ErrorReply::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<ErrorReply>(payload, [](ByteReader& r) {
    return ErrorReply{r.str()};
  });
}

}  // namespace postcard::server
