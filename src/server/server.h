// PostcardServer: a long-running TCP front end around ControllerRuntime.
//
// Threading model (see DESIGN.md §11):
//
//   accept thread ──► session thread per connection
//                       │  Submit*  → RequestIngress (thread-safe; a
//                       │             rejection becomes a Backpressure
//                       │             reply, never a dropped connection)
//                       │  QueryPlan / QueryStats → lock-protected reads
//                       │  Snapshot / AdvanceSlot / Shutdown → command
//                       ▼             queue, answered when executed
//                   driver thread — the ONLY caller of tick(),
//                   capture_snapshot() and flush_in_flight(), so state
//                   mutation and snapshotting happen at slot boundaries.
//
// Sessions never touch runtime internals directly: everything that must
// run between ticks travels through the command queue and is executed by
// the driver, which fulfils the command's promise so the session can send
// its reply. A malformed frame (bad version, lying length, truncation,
// unknown type) earns the session an Error reply when the socket still
// works and a loud close — never UB, never a crash (tests/server runs the
// abuse suite under ASan/UBSan).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "runtime/runtime.h"
#include "server/wire.h"

namespace postcard::server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0: ephemeral; the bound port is port() after start()
  runtime::RuntimeOptions runtime;
  /// Snapshot target. Written on Shutdown/SIGTERM drain and by Snapshot
  /// requests with an empty path; empty disables the final snapshot.
  std::string snapshot_path;
  /// Also write the snapshot every N processed slots (0 = only on demand).
  int snapshot_every_slots = 0;
  /// Tick the slot clock automatically every this many milliseconds
  /// (0 = slots advance only via AdvanceSlot requests — the mode tests
  /// use, keeping the clock deterministic).
  int slot_every_ms = 0;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Upper bound on files in one SubmitBatch frame.
  std::size_t max_batch_files = 100000;
  int listen_backlog = 64;
  /// Per-session read deadline in milliseconds (SO_RCVTIMEO on the session
  /// socket). A peer that sends nothing for this long — stalled, half-open,
  /// or gone without a FIN — is reaped: the session closes quietly and
  /// bumps sessions_reaped, freeing the thread instead of pinning it
  /// forever. 0 disables (sessions block indefinitely, the historical
  /// behavior tests rely on).
  int session_idle_timeout_ms = 0;
};

class PostcardServer {
 public:
  PostcardServer(net::Topology topology, ServerOptions options);
  ~PostcardServer();

  PostcardServer(const PostcardServer&) = delete;
  PostcardServer& operator=(const PostcardServer&) = delete;

  // --- Setup (before start()) -------------------------------------------

  int add_postcard_backend(core::PostcardOptions options = {});
  int add_flow_backend(flow::FlowBaselineOptions options = {});

  /// Restores runtime state from a snapshot file (see snapshot.h). The
  /// backend registration sequence must match the captured server's.
  /// Throws WireError / std::invalid_argument on a bad file or mismatch.
  void restore_from(const std::string& snapshot_path);

  /// Called on the driver thread after every completed tick (explicit
  /// AdvanceSlot and auto-ticks alike) with the slot just committed. The
  /// replication primary hooks here to ship the slot's events and its
  /// divergence fingerprint at exactly the commit boundary. Install before
  /// start(); the hook must not call back into the runtime's driver-only
  /// API (it already runs on the driver).
  void set_post_tick_hook(std::function<void(int)> hook) {
    post_tick_hook_ = std::move(hook);
  }

  // --- Lifecycle ---------------------------------------------------------

  /// Binds, listens and spawns the accept + driver threads.
  /// Throws WireError when the socket cannot be bound.
  void start();

  /// The bound TCP port (after start()).
  int port() const { return port_; }

  /// Initiates the graceful drain from any thread (signal handlers set a
  /// flag and call this from main): the driver finishes its current slot,
  /// writes the final snapshot, retires in-flight work, then every session
  /// is unblocked and joined. Idempotent.
  void request_shutdown();

  /// Blocks until the drain completes and every thread is joined.
  void wait();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// True once the graceful drain has completed (final snapshot written,
  /// in-flight work retired) — whether it was triggered by a Shutdown
  /// frame or request_shutdown(). A serving main loop polls this so a
  /// protocol-initiated shutdown also unparks it; wait() then joins the
  /// remaining threads without blocking on slot work.
  bool drained() const { return drained_.load(std::memory_order_acquire); }

  /// Direct runtime access for tests and --metrics-dump on the server side.
  /// stats() is thread-safe; anything else must respect the driver contract.
  runtime::ControllerRuntime& runtime() { return runtime_; }

  /// RuntimeStats with the server's session counters folded in.
  runtime::RuntimeStats stats() const;

 private:
  struct Command {
    enum class Kind { kAdvance, kSnapshot, kShutdown };
    Kind kind = Kind::kAdvance;
    int slots = 1;             // kAdvance
    std::string path;          // kSnapshot ("" = options_.snapshot_path)
    std::promise<std::string> done;  // error text, empty on success
  };
  struct Session {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void accept_loop();
  void driver_loop();
  void session_loop(Session* session);
  /// Dispatches one decoded frame; returns false when the session must
  /// close (after Shutdown's reply).
  bool handle_frame(int fd, const Frame& frame);
  std::string enqueue_command(Command::Kind kind, int slots,
                              const std::string& path) EXCLUDES(cmd_mu_);
  /// Executes a drained command on the driver thread; returns error text.
  std::string run_command(Command& cmd);
  std::string write_snapshot(const std::string& path);
  void reply(int fd, MessageType type, const std::vector<std::uint8_t>& payload);
  void close_listener();

  ServerOptions options_;
  runtime::ControllerRuntime runtime_;
  std::function<void(int)> post_tick_hook_;  // driver thread only
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> drained_{false};

  std::thread accept_thread_;
  std::thread driver_thread_;

  base::Mutex cmd_mu_;
  std::condition_variable cmd_cv_;  // waits on cmd_mu_.native()
  std::deque<Command> commands_ GUARDED_BY(cmd_mu_);

  base::Mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_ GUARDED_BY(sessions_mu_);

  // Per-session accounting, folded into every stats() snapshot.
  std::atomic<long> sessions_opened_{0};
  std::atomic<long> sessions_closed_{0};
  std::atomic<long> frames_received_{0};
  std::atomic<long> frames_sent_{0};
  std::atomic<long> submits_{0};
  std::atomic<long> submit_admitted_{0};
  std::atomic<long> backpressure_replies_{0};
  std::atomic<long> queries_{0};
  std::atomic<long> protocol_errors_{0};
  std::atomic<long> snapshots_written_{0};
  std::atomic<long> slots_advanced_{0};
  std::atomic<long> sessions_reaped_{0};
};

}  // namespace postcard::server
